"""Determinism lint rules: the registry and the AST checkers.

Each rule owns a stable code (``DET1xx`` for determinism contracts,
``HOT2xx`` for hot-path contracts, ``SUP9xx`` for suppression
hygiene), a short kebab-case name usable in suppression comments, and
a ``check`` function over one parsed module.  Rules are pure: they
read the AST and the :class:`FileContext`, and yield
:class:`Finding` objects — suppression handling, scoping, and
reporting live in :mod:`repro.analysis.lint`.

Scope: the determinism rules only apply to files inside the
sim-affecting packages (``SCOPED_PACKAGES``) — analysis code,
experiment drivers, and the CLI may read clocks or environment
variables freely; simulation state may not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

#: Packages whose code feeds simulated state: a nondeterministic read
#: here corrupts traces, tables, and cached results.
SCOPED_PACKAGES = frozenset(
    {
        "sim",
        "pfs",
        "machine",
        "faults",
        "apps",
        "policies",
        "workloads",
        "pablo",
        # The sweep engine schedules simulations: its worker seeds and
        # point identities must derive from the grid spec, never from
        # ambient entropy (real-time scheduler deadlines carry
        # justified suppressions).
        "sweep",
        # Deliberately NOT scoped: ``serve`` (the HTTP service, job
        # manager, client, and load generator).  Serving is an
        # operational layer — request latencies, socket timeouts,
        # thread scheduling — whose reads never feed simulated state;
        # the runs it schedules execute inside the scoped packages
        # above, where the determinism rules already apply.
    }
)

#: The one module allowed to touch entropy sources: every stochastic
#: element draws from its named substreams.
ENTROPY_BOUNDARY = ("sim", "rng.py")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} [{self.rule}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Per-file inputs shared by every rule."""

    #: Path as reported in findings (repo-relative when possible).
    path: str
    #: Path components, for scope decisions.
    parts: Tuple[str, ...]
    #: Whether the determinism rules apply to this file.
    scoped: bool

    @property
    def is_entropy_boundary(self) -> bool:
        return len(self.parts) >= 2 and self.parts[-2:] == ENTROPY_BOUNDARY


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    summary: str
    #: Whether the rule only applies inside ``SCOPED_PACKAGES``.
    scoped_only: bool
    check: Callable[[ast.Module, FileContext], Iterator[Finding]]


#: Ordered rule registry: code -> Rule.  Iteration order is the
#: (deterministic) registration order — the linter reports findings
#: sorted by location anyway.
RULES: Dict[str, Rule] = {}

#: Name -> code lookup for suppression comments (both spellings work).
RULE_NAMES: Dict[str, str] = {}


def register(
    code: str, name: str, summary: str, scoped_only: bool = True
) -> Callable[
    [Callable[[ast.Module, FileContext], Iterator[Finding]]],
    Callable[[ast.Module, FileContext], Iterator[Finding]],
]:
    """Class-free rule registration decorator."""

    def wrap(
        fn: Callable[[ast.Module, FileContext], Iterator[Finding]]
    ) -> Callable[[ast.Module, FileContext], Iterator[Finding]]:
        if code in RULES or name in RULE_NAMES:
            raise ValueError(f"duplicate rule registration: {code}/{name}")
        RULES[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            scoped_only=scoped_only,
            check=fn,
        )
        RULE_NAMES[name] = code
        return fn

    return wrap


def resolve_rule(token: str) -> Optional[Rule]:
    """Look a rule up by code or by name (as suppressions may use either)."""
    code = RULE_NAMES.get(token, token)
    return RULES.get(code)


# ---------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------

#: Builtins that consume an iterable order-insensitively (or impose
#: their own deterministic order): iterating a set through these is
#: safe.
_ORDER_SAFE_SINKS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Builtins that materialize iteration order: feeding them a set leaks
#: hash order into simulation state.
_ORDER_LEAK_SINKS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "next"}
)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Alias -> real dotted module for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _canonical(dotted: str, aliases: Dict[str, str]) -> str:
    """Resolve the leading segment of ``dotted`` through the module's
    import aliases (``np.random.default_rng`` ->
    ``numpy.random.default_rng``)."""
    head, _, rest = dotted.partition(".")
    real = aliases.get(head)
    if real is None:
        return dotted
    return f"{real}.{rest}" if rest else real


def _is_setish(node: ast.AST, set_locals: Set[str]) -> bool:
    """Whether ``node`` syntactically produces a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra keeps set-ness; only report when a side is known.
        return _is_setish(node.left, set_locals) or _is_setish(
            node.right, set_locals
        )
    return False


def _collect_set_locals(tree: ast.Module) -> Set[str]:
    """Names assigned a set literal / ``set()`` call anywhere in the
    module (simple flow-insensitive tracking — one namespace is enough
    for lint purposes; false negatives are acceptable, false positives
    are not)."""
    names: Set[str] = set()
    reassigned_other: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        setish = _is_setish(value, names)
        for target in targets:
            if isinstance(target, ast.Name):
                if setish:
                    names.add(target.id)
                else:
                    reassigned_other.add(target.id)
    # A name that is *ever* rebound to something non-set is ambiguous:
    # drop it rather than risk a false positive.
    return names - reassigned_other


# ---------------------------------------------------------------------
# DET101 — unordered set iteration
# ---------------------------------------------------------------------

@register(
    "DET101",
    "set-iteration",
    "iteration over an unordered set leaks hash order into sim state",
)
def check_set_iteration(
    tree: ast.Module, ctx: FileContext
) -> Iterator[Finding]:
    """Set iteration order depends on ``PYTHONHASHSEED`` for str/bytes
    (and on allocation history for objects): any loop, comprehension,
    unpacking, or order-materializing call over a set inside sim code
    can reorder events between processes.  Wrap the set in
    ``sorted(...)`` or keep an explicitly ordered container."""
    set_locals = _collect_set_locals(tree)

    def finding(node: ast.AST, how: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            code="DET101",
            rule="set-iteration",
            message=(
                f"{how} iterates a set in unordered hash order; "
                "wrap it in sorted(...) or use an ordered container"
            ),
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_setish(node.iter, set_locals):
                yield finding(node.iter, "for loop")
        elif isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
        ):
            # Iterating a set inside a SetComp/set() is order-safe only
            # when the *result* is consumed safely; flag the generator
            # source regardless for List/Dict/GeneratorExp.
            if isinstance(node, ast.SetComp):
                continue
            for gen in node.generators:
                if _is_setish(gen.iter, set_locals):
                    yield finding(gen.iter, "comprehension")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_LEAK_SINKS
                and node.args
                and _is_setish(node.args[0], set_locals)
            ):
                yield finding(node, f"{func.id}(...)")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and _is_setish(node.args[0], set_locals)
            ):
                yield finding(node, "str.join(...)")
        elif isinstance(node, ast.Starred) and _is_setish(
            node.value, set_locals
        ):
            yield finding(node, "starred unpacking")


# ---------------------------------------------------------------------
# DET102 — entropy / wall-clock reads outside sim/rng.py
# ---------------------------------------------------------------------

#: Call prefixes that read wall-clock time or ambient entropy.
_ENTROPY_PREFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "random.",
    "uuid.",
    "secrets.",
    "os.urandom",
    "numpy.random.",
)


@register(
    "DET102",
    "entropy",
    "wall-clock/RNG/uuid read outside the sim/rng.py boundary",
)
def check_entropy(tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    """All randomness must flow through the named substreams of
    ``repro.sim.rng`` so that adding a consumer never perturbs the
    draws of existing ones; wall-clock reads differ between hosts and
    runs by construction."""
    if ctx.is_entropy_boundary:
        return
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is None:
            continue
        canonical = _canonical(dotted, aliases)
        for prefix in _ENTROPY_PREFIXES:
            hit = (
                canonical == prefix
                or canonical == prefix.rstrip(".")
                or (prefix.endswith(".") and canonical.startswith(prefix))
                or canonical.startswith(prefix + ".")
            )
            if hit:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="DET102",
                    rule="entropy",
                    message=(
                        f"call to {canonical}() reads wall-clock time or "
                        "ambient entropy; route randomness through "
                        "repro.sim.rng named substreams"
                    ),
                )
                break


# ---------------------------------------------------------------------
# DET103 — id()-based ordering / tie-breaking
# ---------------------------------------------------------------------

_ORDER_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _key_uses_id(keyword: ast.keyword) -> bool:
    value = keyword.value
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        for sub in ast.walk(value.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
    return False


@register(
    "DET103",
    "id-ordering",
    "object id() used as a sort key or ordering tie-break",
)
def check_id_ordering(
    tree: ast.Module, ctx: FileContext
) -> Iterator[Finding]:
    """``id()`` is an allocation address: comparing or sorting by it
    ties simulation order to the memory allocator.  Identity *equality*
    (``a is b``, ``id(a) == id(b)``) stays legal — only ordered
    comparisons and sort keys are flagged."""

    def finding(node: ast.AST, how: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            code="DET103",
            rule="id-ordering",
            message=(
                f"{how}: id() values order by allocation address, which "
                "is nondeterministic; derive an explicit sequence number"
            ),
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func_name = None
            if isinstance(node.func, ast.Name):
                func_name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                func_name = node.func.attr
            if func_name in ("sorted", "sort", "min", "max", "nsmallest",
                             "nlargest"):
                for keyword in node.keywords:
                    if keyword.arg == "key" and _key_uses_id(keyword):
                        yield finding(node, f"{func_name}(key=id)")
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            ordered = any(isinstance(op, _ORDER_CMP) for op in node.ops)
            if not ordered:
                continue
            for operand in operands:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "id"
                ):
                    yield finding(node, "ordered comparison of id()")
                    break


# ---------------------------------------------------------------------
# DET104 — os.environ reads outside the config boundary
# ---------------------------------------------------------------------

@register(
    "DET104",
    "environ-read",
    "os.environ access inside sim code (cache-key safety)",
)
def check_environ(tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    """Run behavior must be fully determined at run setup: flags read
    from the environment mid-run cannot be folded into cached-run
    keys, so cached and live results drift apart.  All ``REPRO_*``
    parsing lives in :mod:`repro.flags`; sim code receives resolved
    values through constructors."""
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        dotted: Optional[str] = None
        if isinstance(node, (ast.Attribute, ast.Name)):
            dotted = _dotted_name(node)
        if dotted is None:
            continue
        canonical = _canonical(dotted, aliases)
        if canonical in ("os.environ", "os.getenv", "os.putenv"):
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                code="DET104",
                rule="environ-read",
                message=(
                    f"{canonical} accessed inside a sim-affecting package; "
                    "resolve flags once at run setup via repro.flags and "
                    "thread the value through configuration"
                ),
            )


# ---------------------------------------------------------------------
# HOT201 — per-event telemetry registry lookups in dispatch loops
# ---------------------------------------------------------------------

#: Registry factory methods: calling one resolves (or creates) an
#: instrument by name — a dict lookup plus label canonicalization that
#: must happen once at wiring time, not per event.
_REGISTRY_LOOKUPS = frozenset({"counter", "gauge", "histogram"})


@register(
    "HOT201",
    "hot-telemetry",
    "telemetry registry lookup inside a dispatch loop",
)
def check_hot_telemetry(
    tree: ast.Module, ctx: FileContext
) -> Iterator[Finding]:
    """Engine/datapath/client dispatch loops must use pre-bound
    instruments (``inc = registry.counter(...).inc`` hoisted out of
    the loop): a string-keyed registry lookup per event costs a dict
    probe and label canonicalization on the hottest paths in the
    simulator."""

    class LoopVisitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0
            self.found: List[Finding] = []

        def _visit_loop(self, node: ast.AST) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_For = _visit_loop
        visit_AsyncFor = _visit_loop
        visit_While = _visit_loop

        def visit_Call(self, node: ast.Call) -> None:
            if (
                self.depth > 0
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_LOOKUPS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self.found.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="HOT201",
                        rule="hot-telemetry",
                        message=(
                            f".{node.func.attr}({node.args[0].value!r}) "
                            "resolves an instrument by name inside a loop; "
                            "pre-bind the instrument (or its bound method) "
                            "outside the dispatch loop"
                        ),
                    )
                )
            self.generic_visit(node)

    visitor = LoopVisitor()
    visitor.visit(tree)
    yield from visitor.found

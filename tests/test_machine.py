"""Unit tests for the Paragon machine model."""

import pytest

from repro.errors import MachineError
from repro.machine import (
    DiskConfig,
    IONode,
    MachineConfig,
    Mesh2D,
    Network,
    NetworkConfig,
    ParagonXPS,
    RAID3Array,
)
from repro.sim import Engine
from repro.units import KB, MB


# ---------------------------------------------------------------- topology
def test_mesh_row_major_coordinates():
    mesh = Mesh2D(cols=16, rows=32)
    assert mesh.coordinates(0) == (0, 0)
    assert mesh.coordinates(15) == (15, 0)
    assert mesh.coordinates(16) == (0, 1)
    assert mesh.size == 512


def test_mesh_node_at_inverse():
    mesh = Mesh2D(cols=7, rows=5)
    for node in range(mesh.size):
        x, y = mesh.coordinates(node)
        assert mesh.node_at(x, y) == node


def test_mesh_hops_manhattan():
    mesh = Mesh2D(cols=16, rows=32)
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 15) == 15
    assert mesh.hops(0, 16) == 1
    assert mesh.hops(0, 511) == 15 + 31


def test_mesh_route_length_matches_hops():
    mesh = Mesh2D(cols=8, rows=8)
    route = mesh.route(0, 63)
    assert len(route) == mesh.hops(0, 63) + 1
    assert route[0] == 0 and route[-1] == 63


def test_mesh_route_steps_are_adjacent():
    mesh = Mesh2D(cols=8, rows=8)
    route = mesh.route(5, 58)
    for a, b in zip(route, route[1:]):
        assert mesh.hops(a, b) == 1


def test_mesh_out_of_range_rejected():
    mesh = Mesh2D(cols=4, rows=4)
    with pytest.raises(MachineError):
        mesh.coordinates(16)
    with pytest.raises(MachineError):
        mesh.node_at(4, 0)


def test_mesh_invalid_dimensions():
    with pytest.raises(MachineError):
        Mesh2D(cols=0, rows=4)


def test_spread_positions_unique_and_in_range():
    mesh = Mesh2D(cols=16, rows=32)
    positions = mesh.spread_positions(16)
    assert len(positions) == 16
    assert len(set(positions)) == 16
    assert all(0 <= p < mesh.size for p in positions)


def test_mean_distance_closed_form_small_mesh():
    mesh = Mesh2D(cols=2, rows=2)
    # Exhaustive average for 2x2: pairs hops = {0:4,1:8,2:4}/16 = 1.0
    total = sum(mesh.hops(a, b) for a in range(4) for b in range(4))
    assert mesh.mean_distance() == pytest.approx(total / 16.0)


# ---------------------------------------------------------------- network
def test_transfer_time_components():
    eng = Engine()
    mesh = Mesh2D(cols=4, rows=4)
    cfg = NetworkConfig(latency=1e-3, per_hop=1e-4, bandwidth=1e6)
    net = Network(eng, mesh, cfg)
    t = net.transfer_time(0, 3, 1000)  # 3 hops, 1000 bytes
    assert t == pytest.approx(1e-3 + 3 * 1e-4 + 1000 / 1e6)


def test_transfer_self_is_free():
    eng = Engine()
    net = Network(eng, Mesh2D(4, 4), NetworkConfig())
    assert net.transfer_time(2, 2, 10 * MB) == 0.0


def test_transfer_negative_size_rejected():
    eng = Engine()
    net = Network(eng, Mesh2D(4, 4), NetworkConfig())
    with pytest.raises(MachineError):
        net.transfer_time(0, 1, -1)


def test_send_advances_clock_and_counts():
    eng = Engine()
    net = Network(eng, Mesh2D(4, 4), NetworkConfig(latency=0.5))

    def proc(eng, net):
        yield from net.send(0, 1, 1000)

    eng.process(proc(eng, net))
    eng.run()
    assert eng.now > 0.5
    assert net.messages == 1
    assert net.bytes_moved == 1000


def test_broadcast_scales_logarithmically():
    eng = Engine()
    net = Network(eng, Mesh2D(16, 32), NetworkConfig())
    nodes_small = list(range(4))
    nodes_large = list(range(128))
    t4 = net.broadcast_time(0, 64 * KB, nodes_small)
    t128 = net.broadcast_time(0, 64 * KB, nodes_large)
    # 2 stages vs 7 stages: ratio ~3.5, certainly < linear (32x).
    assert t4 < t128 < 16 * t4


def test_broadcast_single_node_free():
    eng = Engine()
    net = Network(eng, Mesh2D(4, 4), NetworkConfig())
    assert net.broadcast_time(0, MB, [0]) == 0.0


def test_gather_root_link_is_bottleneck():
    eng = Engine()
    cfg = NetworkConfig(latency=1e-6, per_hop=0.0, bandwidth=1e8)
    net = Network(eng, Mesh2D(16, 32), cfg)
    nodes = list(range(64))
    t = net.gather_time(0, 100 * KB, nodes)
    payload = 63 * 100 * KB / 1e8
    assert t >= payload


def test_gather_no_senders_free():
    eng = Engine()
    net = Network(eng, Mesh2D(4, 4), NetworkConfig())
    assert net.gather_time(0, MB, [0]) == 0.0


def test_barrier_time_log_stages():
    eng = Engine()
    cfg = NetworkConfig(barrier_stage=1e-3)
    net = Network(eng, Mesh2D(16, 32), cfg)
    assert net.barrier_time(1) == 0.0
    assert net.barrier_time(2) == pytest.approx(2e-3)
    assert net.barrier_time(128) == pytest.approx(14e-3)


# ---------------------------------------------------------------- disk
def test_disk_sequential_cheaper_than_random():
    disk = RAID3Array(DiskConfig())
    t_first = disk.service_time(0, 64 * KB)
    t_seq = disk.service_time(64 * KB, 64 * KB)
    assert t_seq < t_first


def test_disk_random_after_sequential_pays_positioning():
    cfg = DiskConfig()
    disk = RAID3Array(cfg)
    disk.service_time(0, 64 * KB)
    t_rand = disk.service_time(500 * MB, 64 * KB)
    assert t_rand == pytest.approx(
        cfg.request_overhead + cfg.positioning + 64 * KB / cfg.transfer_rate
    )


def test_disk_large_requests_amortize_overhead():
    cfg = DiskConfig()
    # bandwidth efficiency = transfer / total
    def efficiency(nbytes):
        disk = RAID3Array(cfg)
        t = disk.service_time(0, nbytes)
        return (nbytes / cfg.transfer_rate) / t

    assert efficiency(1 * KB) < 0.1
    assert efficiency(1 * MB) > 0.9


def test_disk_counters():
    disk = RAID3Array(DiskConfig())
    disk.service_time(0, 1000)
    disk.service_time(1000, 2000)
    assert disk.requests == 2
    assert disk.bytes_serviced == 3000
    assert disk.busy_time > 0
    assert disk.mean_service_time == pytest.approx(disk.busy_time / 2)


def test_disk_peek_does_not_mutate():
    disk = RAID3Array(DiskConfig())
    t1 = disk.peek_service_time(0, 1000)
    t2 = disk.peek_service_time(0, 1000)
    assert t1 == t2
    assert disk.requests == 0


def test_disk_reset_position():
    cfg = DiskConfig()
    disk = RAID3Array(cfg)
    disk.service_time(0, KB)
    disk.reset_position()
    assert not disk.is_sequential(KB)


def test_disk_invalid_request():
    disk = RAID3Array(DiskConfig())
    with pytest.raises(MachineError):
        disk.service_time(-1, 10)
    with pytest.raises(MachineError):
        disk.service_time(0, -10)


# ---------------------------------------------------------------- ionode
def test_ionode_fifo_service():
    eng = Engine()
    ionode = IONode(eng, 0, 0, DiskConfig())
    completions = []

    def client(eng, ionode, rank):
        req = yield eng.process(
            ionode.submit(rank, "read", rank * MB, 64 * KB)
        )
        completions.append((rank, req.queue_delay))

    for rank in range(3):
        eng.process(client(eng, ionode, rank))
    eng.run()
    assert [r for r, _ in completions] == [0, 1, 2]
    # First request had no queueing; later ones did.
    assert completions[0][1] == pytest.approx(0.0)
    assert completions[2][1] > completions[1][1] > 0


def test_ionode_counters_accumulate():
    eng = Engine()
    ionode = IONode(eng, 0, 0, DiskConfig())

    def client(eng, ionode):
        yield eng.process(ionode.submit(0, "write", 0, KB))
        yield eng.process(ionode.submit(0, "write", KB, KB))

    eng.process(client(eng, ionode))
    eng.run()
    assert ionode.completed == 2
    assert ionode.total_service > 0


# ---------------------------------------------------------------- machine
def test_paragon_caltech_shape():
    eng = Engine()
    machine = ParagonXPS(eng)
    assert len(machine.compute_nodes) == 512
    assert len(machine.io_nodes) == 16
    assert machine.config.stripe_size == 64 * KB
    assert machine.compute_nodes[0].is_node_zero
    assert not machine.compute_nodes[1].is_node_zero


def test_paragon_partition():
    eng = Engine()
    machine = ParagonXPS(eng)
    part = machine.partition(128)
    assert len(part) == 128
    assert [n.rank for n in part] == list(range(128))
    with pytest.raises(MachineError):
        machine.partition(0)
    with pytest.raises(MachineError):
        machine.partition(513)


def test_machine_config_validation():
    with pytest.raises(MachineError):
        MachineConfig(n_compute_nodes=1000, mesh_cols=4, mesh_rows=4).validate()
    with pytest.raises(MachineError):
        MachineConfig(n_io_nodes=0).validate()
    with pytest.raises(MachineError):
        MachineConfig(stripe_size=0).validate()


def test_machine_config_scaled():
    cfg = MachineConfig.caltech().scaled(n_io_nodes=4, stripe_size=16 * KB)
    assert cfg.n_io_nodes == 4
    assert cfg.stripe_size == 16 * KB
    # Original untouched (frozen dataclass semantics).
    assert MachineConfig.caltech().n_io_nodes == 16


def test_compute_node_jitter_reproducible():
    def run():
        eng = Engine()
        machine = ParagonXPS(eng)
        node = machine.compute_nodes[3]
        times = []

        def proc(eng, node):
            for _ in range(5):
                yield from node.compute(1.0, jitter=0.2)
                times.append(eng.now)

        eng.process(proc(eng, node))
        eng.run()
        return times

    assert run() == run()


def test_compute_node_jitter_requires_rng():
    eng = Engine()
    from repro.machine.node import ComputeNode

    node = ComputeNode(eng, rank=0, mesh_position=0, rng=None)

    def proc(eng, node):
        yield from node.compute(1.0, jitter=0.5)

    eng.process(proc(eng, node))
    with pytest.raises(MachineError):
        eng.run()


def test_compute_negative_time_rejected():
    eng = Engine()
    machine = ParagonXPS(eng)

    def proc(node):
        yield from node.compute(-1.0)

    eng.process(proc(machine.compute_nodes[0]))
    with pytest.raises(MachineError):
        eng.run()

"""Tests for the validation scorecard (fast mode).

The fast miniature problems do not reproduce every paper-scale shape
(that is what the paper-scale benchmark suite checks); here we verify
the scorecard machinery itself and the claims that hold at any scale.
"""

from repro.experiments import clear_cache
from repro.experiments.validate import Check, Scorecard, validate_all


def test_scorecard_counting_and_rendering():
    card = Scorecard()
    card.add("always true", True, "detail")
    card.add("always false", False)
    assert card.passed == 1 and card.total == 2
    assert not card.all_passed
    text = card.render()
    assert "[PASS] always true — detail" in text
    assert "[FAIL] always false" in text
    assert "1/2" in text


def test_check_line_format():
    assert Check("c", True).line() == "[PASS] c"
    assert Check("c", False, "why").line() == "[FAIL] c — why"


def test_validate_fast_mode_scores_scale_free_claims():
    clear_cache()
    card = validate_all(fast=True)
    assert card.total >= 15
    by_claim = {c.claim: c for c in card.checks}
    # Claims that must hold even at miniature scale.
    assert by_claim["ESCAT A: open+read dominate total I/O time"].passed
    assert by_claim["ESCAT B: seek is the dominant operation"].passed
    assert by_claim[
        "ESCAT seek durations drop by orders of magnitude B -> C"
    ].passed
    assert by_claim[
        "PRISM A: open dominates total I/O time (paper 75.4%)"
    ].passed
    # The miniature problems still reproduce well over half the claims.
    assert card.passed >= card.total * 0.6

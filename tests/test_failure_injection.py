"""Failure/degradation injection: hot spots and slow devices.

The simulator's structural claims should degrade gracefully and
predictably: a slow disk bottlenecks exactly the operations that
touch it, node-ordered modes pace at the slowest participant, and
write-behind absorbs (then backpressures on) a slow drain.
"""

from dataclasses import replace

from repro.machine import MachineConfig, ParagonXPS
from repro.machine.disk import RAID3Array
from repro.pablo import Tracer
from repro.pfs import PFS, AccessMode
from repro.sim import Engine
from repro.units import KB, MB


def _world(n_io=4, degrade_io_node=None, degrade_factor=20.0):
    eng = Engine()
    machine = ParagonXPS(eng, MachineConfig(
        mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=n_io,
    ))
    if degrade_io_node is not None:
        slow = machine.io_nodes[degrade_io_node]
        cfg = slow.disk.config
        slow.disk = RAID3Array(replace(
            cfg,
            positioning=cfg.positioning * degrade_factor,
            transfer_rate=cfg.transfer_rate / degrade_factor,
        ), name=f"degraded{degrade_io_node}")
    tracer = Tracer()
    pfs = PFS(eng, machine, tracer=tracer)
    return eng, machine, pfs, tracer


def _striped_read_time(degrade=None):
    eng, machine, pfs, tracer = _world(degrade_io_node=degrade)

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data", buffered=False)
        yield from cli.write(h, 1 * MB)
        yield from cli.seek(h, 0)
        t0 = eng.now
        yield from cli.read(h, 1 * MB)
        return eng.now - t0

    p = eng.process(proc())
    eng.run()
    return p.value


def test_degraded_disk_slows_striped_reads():
    healthy = _striped_read_time(degrade=None)
    degraded = _striped_read_time(degrade=2)
    # One slow stripe server gates the whole striped request.
    assert degraded > 3 * healthy


def test_degraded_disk_only_affects_its_stripes():
    """Requests that avoid the slow disk are unaffected."""
    eng, machine, pfs, tracer = _world(degrade_io_node=3)
    stripe = machine.config.stripe_size
    times = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data", buffered=False)
        yield from cli.write(h, 4 * stripe)  # stripes 0..3
        # Read a stripe on a healthy disk, then the degraded one.
        yield from cli.seek(h, 0)
        t0 = eng.now
        yield from cli.read(h, stripe)
        times["healthy"] = eng.now - t0
        yield from cli.seek(h, 3 * stripe)
        t0 = eng.now
        yield from cli.read(h, stripe)
        times["degraded"] = eng.now - t0
        yield from cli.close(h)

    eng.process(proc())
    eng.run()
    assert times["degraded"] > 3 * times["healthy"]


def test_record_mode_paces_at_slowest_disk():
    """M_RECORD rounds are collectively gated by the hot spot."""
    def round_time(degrade):
        eng, machine, pfs, tracer = _world(degrade_io_node=degrade)

        def writer():
            cli = pfs.client(15)
            h = yield from cli.open("/pfs/rec")
            yield from cli.write(h, 8 * 64 * KB)
            yield from cli.close(h)

        eng.process(writer())
        eng.run()

        def node(rank):
            cli = pfs.client(rank)
            h = yield from cli.gopen(
                "/pfs/rec", group=range(8), mode=AccessMode.M_RECORD,
                buffered=False,
            )
            yield from cli.seek(h, rank * 64 * KB)
            yield from cli.read(h, 64 * KB)
            yield from cli.close(h)

        procs = [eng.process(node(r)) for r in range(8)]
        eng.run(until=eng.all_of(procs))
        wall = eng.now
        eng.run()
        return wall

    assert round_time(degrade=1) > 2 * round_time(degrade=None)


def test_write_behind_backpressure_under_slow_drain():
    """A slow disk turns write-behind acks into backpressure, not
    unbounded dirty data."""
    eng, machine, pfs, tracer = _world(degrade_io_node=0, degrade_factor=50)

    def proc():
        cli = pfs.client(0)
        h = yield from cli.gopen(
            "/pfs/wb", group=[0], mode=AccessMode.M_ASYNC
        )
        # Hammer the degraded disk's stripes only (stripe 0, 4, 8...).
        stripe = machine.config.stripe_size
        for i in range(40):
            yield from cli.seek(h, (i * 4) * stripe)
            yield from cli.write(h, 8 * KB)
        yield from cli.close(h)

    eng.process(proc())
    eng.run()
    server = pfs.servers[0]
    # All write-behind slots were eventually released (drains finished).
    assert server.pending_write_behind == 0
    # The cache never exceeded its dirty bound.
    assert server.cache.dirty_count == 0


def test_degraded_network_slows_broadcast():
    from repro.machine import NetworkConfig, Mesh2D, Network

    eng = Engine()
    mesh = Mesh2D(4, 4)
    fast = Network(eng, mesh, NetworkConfig())
    slow = Network(eng, mesh, NetworkConfig(
        bandwidth=NetworkConfig().bandwidth / 100,
        latency=NetworkConfig().latency * 10,
    ))
    nodes = list(range(16))
    assert slow.broadcast_time(0, MB, nodes) > \
        10 * fast.broadcast_time(0, MB, nodes)

"""Equivalence of the batched data path with the legacy per-piece path.

The batched data path (``repro.pfs.datapath``, ``REPRO_FAST_DATAPATH``)
is a pure performance feature: for every access mode and any request
shape it must produce the byte-identical SDDF trace — and therefore
identical Table-2/Table-3 rows — that the legacy event-stepped piece
processes produce.  These tests drive a multi-rank workload through
all six PFS modes with stripe-aligned and ragged request sizes, under
both settings, and compare the complete outputs.
"""

import io

import pytest

from repro.core.breakdown import execution_fraction, io_time_breakdown
from repro.machine import DiskConfig, MachineConfig, NetworkConfig, ParagonXPS
from repro.pablo import Tracer
from repro.pablo.sddf import write_sddf
from repro.pfs import PFS, PFSCostModel
from repro.pfs.modes import AccessMode
from repro.sim import Engine
from repro.units import KB

N_RANKS = 4

#: Stripe-aligned request sizes (stripe = 64 KB below).
ALIGNED = (64 * KB, 128 * KB, 64 * KB)
#: Ragged sizes: sub-stripe, prime-ish, and stripe-crossing.
RAGGED = (3000, 7777, 65 * KB + 123)


def _run_world(fast_datapath, mode, sizes, monkeypatch):
    """One complete simulated run; returns (sddf_bytes, trace, wall)."""
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1" if fast_datapath else "0")
    eng = Engine()
    config = MachineConfig(
        mesh_cols=4,
        mesh_rows=4,
        n_compute_nodes=16,
        n_io_nodes=4,
        stripe_size=64 * KB,
        network=NetworkConfig(),
        disk=DiskConfig(),
    )
    machine = ParagonXPS(eng, config)
    tracer = Tracer()
    pfs = PFS(eng, machine, tracer=tracer)
    assert (pfs.datapath is not None) == fast_datapath

    group = list(range(N_RANKS))
    gopen_mode = None if mode is AccessMode.M_UNIX else mode
    if mode is AccessMode.M_RECORD:
        sizes = (sizes[0],) * len(sizes)  # fixed-size mode

    def rank_proc(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen("/pfs/eq", group=group, mode=gopen_mode)
        for s in sizes:
            yield from cli.write(h, s)
        yield from cli.close(h)
        h = yield from cli.gopen("/pfs/eq", group=group, mode=gopen_mode)
        for s in sizes:
            yield from cli.read(h, s)
        yield from cli.close(h)

    for rank in group:
        eng.process(rank_proc(rank), name=f"rank-{rank}")
    eng.run()
    trace = tracer.finish()
    out = io.StringIO()
    write_sddf(trace, out)
    return out.getvalue(), trace, eng.now


@pytest.mark.parametrize("mode", list(AccessMode), ids=lambda m: m.value)
@pytest.mark.parametrize(
    "sizes", [ALIGNED, RAGGED], ids=["aligned", "ragged"]
)
def test_datapath_matches_legacy(mode, sizes, monkeypatch):
    fast_sddf, fast_trace, fast_wall = _run_world(
        True, mode, sizes, monkeypatch
    )
    legacy_sddf, legacy_trace, legacy_wall = _run_world(
        False, mode, sizes, monkeypatch
    )
    # Byte-identical SDDF output, identical simulated wall clock.
    assert fast_sddf == legacy_sddf
    assert fast_wall == legacy_wall
    assert len(fast_trace) > 0

    # Table-2 rows: per-op I/O-time totals and counts match exactly.
    fast_b = io_time_breakdown(fast_trace)
    legacy_b = io_time_breakdown(legacy_trace)
    assert fast_b.totals == legacy_b.totals
    assert fast_b.counts == legacy_b.counts

    # Table-3 rows: % of execution node-time per op matches exactly.
    fast_rows = execution_fraction(fast_trace, fast_wall, n_nodes=N_RANKS)
    legacy_rows = execution_fraction(
        legacy_trace, legacy_wall, n_nodes=N_RANKS
    )
    assert fast_rows == legacy_rows


def test_datapath_off_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "0")
    eng = Engine()
    machine = ParagonXPS(
        eng,
        MachineConfig(
            mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=4,
            stripe_size=64 * KB, network=NetworkConfig(), disk=DiskConfig(),
        ),
    )
    pfs = PFS(eng, machine, costs=PFSCostModel())
    assert pfs.datapath is None

"""Determinism regressions for the fast simulation core.

The fast kernel (calendar queue + event pooling), the columnar tracer,
and the on-disk run cache must all be invisible in the results: the
same SDDF bytes and the same table rows, however the run executed.
"""

import io
import os


from repro.apps import run_escat, scaled_escat_problem
from repro.core.breakdown import io_time_breakdown
from repro.experiments import cache
from repro.experiments import runner
from repro.experiments.registry import run_experiment
from repro.pablo.sddf import write_sddf
from repro.sim import Engine

SEED = 1996


def _escat_sddf(monkeypatch, fast_core):
    monkeypatch.setenv("REPRO_FAST_CORE", "1" if fast_core else "0")
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    out = io.StringIO()
    write_sddf(result.trace, out)
    return out.getvalue(), result


def test_fast_and_legacy_kernels_are_bit_identical(monkeypatch):
    fast_sddf, fast_result = _escat_sddf(monkeypatch, fast_core=True)
    legacy_sddf, legacy_result = _escat_sddf(monkeypatch, fast_core=False)
    assert fast_sddf == legacy_sddf
    # Table 2 rows (per-op totals, counts, percentages) match exactly.
    fast_b = io_time_breakdown(fast_result.trace)
    legacy_b = io_time_breakdown(legacy_result.trace)
    assert fast_b.totals == legacy_b.totals
    assert fast_b.counts == legacy_b.counts


def test_cached_run_is_bit_identical_to_fresh(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    runner.clear_cache()
    fresh = runner.escat_result("A", fast=True, seed=SEED)

    # Drop the in-process memo so the next call must hit the disk.
    runner.clear_cache()
    cached = runner.escat_result("A", fast=True, seed=SEED)
    assert cached is not fresh  # really reloaded, not memoized

    fresh_out, cached_out = io.StringIO(), io.StringIO()
    write_sddf(fresh.trace, fresh_out)
    write_sddf(cached.trace, cached_out)
    assert fresh_out.getvalue() == cached_out.getvalue()
    fresh_b = io_time_breakdown(fresh.trace)
    cached_b = io_time_breakdown(cached.trace)
    assert fresh_b.totals == cached_b.totals
    assert fresh_b.counts == cached_b.counts


def test_cache_round_trip_preserves_metadata(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    key = cache.run_key(kind="t", version="A", problem=problem, seed=SEED)
    cache.store(key, result)
    loaded = cache.load(key)
    assert loaded is not None
    assert loaded.application == result.application
    assert loaded.version == result.version
    assert loaded.n_nodes == result.n_nodes
    assert loaded.wall_time == result.wall_time
    assert len(loaded.trace) == len(result.trace)


def test_cache_lru_eviction(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    keys = [
        cache.run_key(kind="evict", n=i, problem=problem) for i in range(3)
    ]
    for i, key in enumerate(keys):
        cache.store(key, result)
        # Force distinct, ordered recency stamps (filesystem mtime
        # granularity would otherwise tie them).
        _, meta_path = cache._paths(key)
        os.utime(meta_path, (1000 + i, 1000 + i))
    per_entry = sum(
        p.stat().st_size for key in keys for p in cache._paths(key)
    ) // 3

    # Cap to roughly two entries: only the least recently used goes.
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(2 * per_entry + 16))
    assert cache.evict() == 1
    assert cache.load(keys[0]) is None
    assert cache.load(keys[1]) is not None
    assert cache.load(keys[2]) is not None

    # keep_key survives even an impossible cap.
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1")
    cache.evict(keep_key=keys[2])
    assert cache.load(keys[1]) is None
    assert cache.load(keys[2]) is not None

    # <= 0 disables the cap entirely.
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
    assert cache.evict() == 0
    assert cache.load(keys[2]) is not None


def test_corrupt_cache_entries_miss_and_quarantine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)

    # Truncated trace: miss, and both files are quarantined.
    key = cache.run_key(kind="q-trunc", problem=problem)
    cache.store(key, result)
    trace_path, meta_path = cache._paths(key)
    trace_path.write_text(trace_path.read_text()[: 64])
    assert cache.load(key) is None
    assert not trace_path.exists() and not meta_path.exists()
    # ... so a subsequent fetch_or_run repopulates a clean entry.
    again = cache.fetch_or_run(key, lambda: result)
    assert again is result
    assert cache.load(key) is not None

    # Garbage sidecar: same contract.
    key = cache.run_key(kind="q-meta", problem=problem)
    cache.store(key, result)
    trace_path, meta_path = cache._paths(key)
    meta_path.write_text("{not json")
    assert cache.load(key) is None
    assert not trace_path.exists() and not meta_path.exists()

    # Orphaned trace with no sidecar (torn write): quarantined too.
    key = cache.run_key(kind="q-orphan", problem=problem)
    cache.store(key, result)
    trace_path, meta_path = cache._paths(key)
    meta_path.unlink()
    assert cache.load(key) is None
    assert not trace_path.exists()


def test_table2_identical_across_kernels(monkeypatch):
    runner.clear_cache()
    monkeypatch.setenv("REPRO_FAST_CORE", "1")
    fast_text = run_experiment("table2", fast=True)
    runner.clear_cache()
    monkeypatch.setenv("REPRO_FAST_CORE", "0")
    monkeypatch.setenv("REPRO_CACHE", "0")  # force re-simulation
    legacy_text = run_experiment("table2", fast=True)
    assert fast_text == legacy_text


def test_run_until_leaves_no_stopper_behind():
    # Regression: run(until=<time>) used to leave its internal stopper
    # event queued when the run ended early via StopSimulation raised
    # by another event, polluting peek().
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)

    eng.process(proc(eng))
    eng.run(until=100.0)  # queue drains long before t=100
    assert eng.peek() == float("inf")

"""Tests for repro.telemetry: the observability subsystem.

The two headline guarantees are asserted here: enabling telemetry
leaves SDDF traces byte-identical across both DES kernels and both
data paths, and a disabled registry hands out shared null instruments.
Also covers the run-cache statistics sidecar and the perf regression
gate behind ``repro bench --check``.
"""

import io
import json

import pytest

from repro import telemetry
from repro.apps import run_escat, scaled_escat_problem
from repro.core.breakdown import io_time_breakdown
from repro.experiments import cache, perfbench
from repro.pablo.sddf import write_sddf
from repro.telemetry import (
    Counter,
    EngineProbe,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    SimTimeSampler,
    TelemetryError,
    to_json,
    to_openmetrics,
)

SEED = 1996


@pytest.fixture
def forced_telemetry():
    """Enable telemetry for the test, always restoring the env default."""
    telemetry.set_enabled(True)
    try:
        yield
    finally:
        telemetry.set_enabled(None)
        telemetry.set_sample_resolution(None)


# ---------------------------------------------------------------------------
# registry primitives


def test_counter_increments_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(TelemetryError):
        c.inc(-1)


def test_gauge_set_and_callback_read():
    g = Gauge()
    g.set(7)
    assert g.read() == 7.0
    level = {"value": 1}
    g = Gauge(fn=lambda: level["value"])
    assert g.read() == 1.0
    level["value"] = 9
    assert g.read() == 9.0  # callback re-evaluated on every read


def test_histogram_buckets_and_cumulative():
    h = Histogram(bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(560.5)
    assert h.bucket_counts == [1, 2, 1]  # +Inf bucket is count itself
    assert h.cumulative() == [1, 3, 4]


def test_histogram_rejects_bad_bounds():
    with pytest.raises(TelemetryError):
        Histogram(bounds=())
    with pytest.raises(TelemetryError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(TelemetryError):
        Histogram(bounds=(2.0, 1.0))


def test_disabled_registry_hands_out_shared_nulls():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("a") is NULL_COUNTER
    assert reg.gauge("b") is NULL_GAUGE
    assert reg.gauge_fn("c", lambda: 1.0) is NULL_GAUGE
    assert reg.histogram("d") is NULL_HISTOGRAM
    # Null mutators are no-ops, and nothing is retained.
    NULL_COUNTER.inc(5)
    NULL_GAUGE.set(5)
    NULL_HISTOGRAM.observe(5)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert reg.collect() == []
    assert len(reg) == 0


def test_registry_label_identity_and_kind_conflict():
    reg = MetricsRegistry()
    a = reg.counter("reqs", server="io0")
    b = reg.counter("reqs", server="io0")
    c = reg.counter("reqs", server="io1")
    assert a is b and a is not c
    with pytest.raises(TelemetryError):
        reg.gauge("reqs")  # same name, different kind
    with pytest.raises(TelemetryError):
        reg.counter("bad name")


def test_registry_collect_shape():
    reg = MetricsRegistry()
    reg.counter("n", help="things").inc(3)
    reg.gauge_fn("level", lambda: 42.0)
    reg.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
    snap = reg.collect()
    assert [f["name"] for f in snap] == ["lat", "level", "n"]  # sorted
    by_name = {f["name"]: f for f in snap}
    assert by_name["n"]["samples"][0]["value"] == 3
    assert by_name["level"]["samples"][0]["value"] == 42.0
    hist = by_name["lat"]["samples"][0]
    assert hist["count"] == 1 and hist["cumulative"] == [0, 1]
    json.dumps(snap)  # JSON-able throughout


# ---------------------------------------------------------------------------
# sampler


def test_sampler_samples_once_per_grid_crossing():
    s = SimTimeSampler(resolution=1.0)
    level = {"value": 0.0}
    s.add_source("q", lambda: level["value"])
    for now, value in ((0.0, 1), (0.5, 2), (1.2, 3), (1.3, 4), (2.7, 5)):
        level["value"] = value
        s.on_advance(now)
    # 0.0 starts the grid; 0.5 and 1.3 are inside already-sampled
    # cells; 1.2 and 2.7 cross new grid points.
    assert s.times == [0.0, 1.2, 2.7]
    assert s.series()["q"] == [1.0, 3.0, 5.0]


def test_sampler_rejects_duplicates_and_bad_resolution():
    s = SimTimeSampler()
    s.add_source("q", lambda: 0.0)
    with pytest.raises(ValueError):
        s.add_source("q", lambda: 0.0)
    with pytest.raises(ValueError):
        SimTimeSampler(resolution=0.0)


def test_engine_probe_forwards_to_sampler():
    s = SimTimeSampler(resolution=1.0)
    s.add_source("x", lambda: 1.0)
    probe = EngineProbe(s)
    probe.on_advance(0.0)
    assert s.times == [0.0]


# ---------------------------------------------------------------------------
# exporters


def test_openmetrics_output_shape():
    reg = MetricsRegistry()
    reg.counter("reqs_total", help="requests", server="io0").inc(2)
    reg.histogram("lat_seconds", bounds=(0.1, 1.0)).observe(0.5)
    text = to_openmetrics(reg.collect())
    assert text.endswith("# EOF\n")
    assert '# TYPE reqs_total counter' in text
    assert 'reqs_total{server="io0"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_count 1" in text


def test_to_json_is_deterministic():
    snap = {"b": 1, "a": {"d": 2, "c": 3}}
    assert to_json(snap) == to_json(dict(reversed(list(snap.items()))))


# ---------------------------------------------------------------------------
# the headline guarantee: telemetry never changes simulation output


def _escat_sddf(monkeypatch, fast_core, fast_datapath, with_telemetry):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_FAST_CORE", "1" if fast_core else "0")
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1" if fast_datapath else "0")
    telemetry.set_enabled(True if with_telemetry else None)
    try:
        problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
        result = run_escat("A", problem, seed=SEED)
    finally:
        telemetry.set_enabled(None)
    out = io.StringIO()
    write_sddf(result.trace, out)
    return out.getvalue(), result


@pytest.mark.parametrize("fast_core", [True, False])
@pytest.mark.parametrize("fast_datapath", [True, False])
def test_telemetry_is_byte_invisible(monkeypatch, fast_core, fast_datapath):
    plain_sddf, plain = _escat_sddf(
        monkeypatch, fast_core, fast_datapath, with_telemetry=False
    )
    telem_sddf, telem = _escat_sddf(
        monkeypatch, fast_core, fast_datapath, with_telemetry=True
    )
    assert plain.telemetry is None
    assert telem.telemetry is not None
    assert telem_sddf == plain_sddf
    plain_b = io_time_breakdown(plain.trace)
    telem_b = io_time_breakdown(telem.trace)
    assert plain_b.totals == telem_b.totals
    assert plain_b.counts == telem_b.counts


def test_snapshot_structure_and_consistency(monkeypatch, forced_telemetry):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_FAST_CORE", "1")
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1")
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    snap = result.telemetry
    assert snap["schema"] == telemetry.instruments.SCHEMA
    eng = snap["engine"]
    assert eng["kernel"] == "fast"
    assert eng["events"] > 0
    # Every dispatched event happened at some distinct timestamp.
    assert 0 < eng["timestamps"] <= eng["events"]
    assert snap["sim_seconds"] == pytest.approx(result.wall_time)
    assert len(snap["servers"]) == 16  # caltech config: 16 I/O nodes
    for server in snap["servers"]:
        disk = server["disk"]
        assert disk["busy_s"] >= 0
        assert disk["busy_s"] == pytest.approx(
            disk["position_s"] + disk["transfer_s"], rel=1e-6, abs=1e-9
        ) or disk["busy_s"] >= disk["position_s"] + disk["transfer_s"] - 1e-6
    dp = snap["datapath"]
    # Span-carried and event-stepped bytes partition the write traffic.
    assert dp["span_bytes"] > 0 and dp["fallback_bytes"] >= 0
    ts = snap["timeseries"]
    assert ts["times"], "sampler never fired"
    assert all(len(v) == len(ts["times"]) for v in ts["series"].values())
    assert snap["trace"]["by_phase"]
    text = to_openmetrics(snap)
    assert text.endswith("# EOF\n")
    json.dumps(snap)


def test_sample_resolution_override(monkeypatch, forced_telemetry):
    monkeypatch.setenv("REPRO_CACHE", "0")
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    telemetry.set_sample_resolution(5.0)
    coarse = run_escat("A", problem, seed=SEED).telemetry
    telemetry.set_sample_resolution(0.25)
    fine = run_escat("A", problem, seed=SEED).telemetry
    assert len(fine["timeseries"]["times"]) > len(
        coarse["timeseries"]["times"]
    )
    with pytest.raises(TelemetryError):
        telemetry.set_sample_resolution(-1.0)


def test_render_summary_mentions_the_load_bearing_lines(
    monkeypatch, forced_telemetry
):
    monkeypatch.setenv("REPRO_CACHE", "0")
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    snap = run_escat("A", problem, seed=SEED).telemetry
    text = telemetry.render_summary(snap, top=2)
    assert "busiest servers" in text
    assert "datapath:" in text
    assert "caches:" in text
    assert text.count("io ") == 2  # --top honoured


# ---------------------------------------------------------------------------
# run-cache statistics sidecar


def test_cache_stats_track_hits_misses_and_quarantine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    before = cache.session_stats()
    key = cache.run_key(kind="stats-test", problem=problem)

    assert cache.load(key) is None  # miss
    cache.store(key, result)
    assert cache.load(key) is not None  # hit
    trace_path, meta_path = cache._paths(key)
    meta_path.write_text("{broken")
    assert cache.load(key) is None  # corrupt: miss + quarantine

    after = cache.session_stats()
    deltas = {k: after[k] - before[k] for k in after}
    assert deltas["hits"] == 1
    assert deltas["misses"] == 2
    assert deltas["stores"] == 1
    assert deltas["quarantined"] == 1

    # The sidecar persists the same counters at the cache root, and
    # the stats scan does not count it as an entry.
    persistent = cache.persistent_stats()
    assert persistent["hits"] >= 1 and persistent["quarantined"] >= 1
    assert (tmp_path / cache.STATS_NAME).exists()
    st = cache.stats()
    assert st["entries"] == 0  # quarantined entry removed, STATS skipped
    assert st["dir"] == str(tmp_path)


def test_cache_stats_sidecar_survives_eviction_scan(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    key = cache.run_key(kind="evict-sidecar", problem=problem)
    cache.store(key, result)
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1")
    # The only entry is keep-protected; the sidecar must not be
    # treated as an evictable entry (it would loop or be deleted).
    assert cache.evict(keep_key=key) == 0
    assert (tmp_path / cache.STATS_NAME).exists()
    assert cache.load(key) is not None


def test_cache_stats_disabled_cache_skips_sidecar(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE", "0")
    before = cache.session_stats()
    assert cache.load("0" * 64) is None
    after = cache.session_stats()
    # Disabled cache: no lookup happened at all, nothing written.
    assert after == before
    assert not (tmp_path / cache.STATS_NAME).exists()


# ---------------------------------------------------------------------------
# perf regression gate


def _fake_report(kind="repro fast simulation core", quick=False, scale=1.0):
    return {
        "benchmark": kind,
        "quick": quick,
        "engine": {"speedup": 4.0 * scale},
        "engine_process_driven": {"speedup": 2.0 * scale},
    }


def test_check_regressions_passes_identical_reports():
    report = perfbench.check_regressions(_fake_report(), _fake_report())
    assert not report["regressed"]
    assert report["compared"] == 2
    assert "verdict: ok" in perfbench.render_check(report)


def test_check_regressions_flags_injected_slowdown():
    # 15% is the threshold: a 15% drop is within tolerance, 16% fails.
    ok = perfbench.check_regressions(
        _fake_report(scale=0.86), _fake_report()
    )
    assert not ok["regressed"]
    bad = perfbench.check_regressions(
        _fake_report(scale=0.84), _fake_report()
    )
    assert bad["regressed"]
    assert "REGRESSED" in perfbench.render_check(bad)


def test_check_regressions_skips_scale_sensitive_on_quick_mismatch():
    def dp_report(quick, speedup=1.3):
        return {
            "benchmark": "repro batched PFS data path",
            "quick": quick,
            "decomposition": {"speedup": 30.0},
            "server": {"speedup": 0.7},
            "end_to_end": {"speedup_vs_legacy_datapath": speedup},
        }

    report = perfbench.check_regressions(
        dp_report(quick=True, speedup=0.1), dp_report(quick=False)
    )
    skipped = [r["metric"] for r in report["metrics"] if "skipped" in r]
    assert "end_to_end.speedup_vs_legacy_datapath" in skipped
    assert "decomposition.speedup" in skipped
    assert not report["regressed"]
    # Like-for-like scale compares everything.
    report = perfbench.check_regressions(
        dp_report(quick=True, speedup=0.1), dp_report(quick=True)
    )
    assert report["compared"] == 3
    assert report["regressed"]


def test_check_regressions_rejects_suite_mismatch_and_bad_baseline(
    tmp_path,
):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        perfbench.check_regressions(
            _fake_report(), _fake_report(kind="other suite")
        )
    with pytest.raises(ReproError):
        perfbench.load_report(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text('{"no": "benchmark key"}')
    with pytest.raises(ReproError):
        perfbench.load_report(str(bad))
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_fake_report()))
    assert perfbench.load_report(str(good))["benchmark"] \
        == "repro fast simulation core"


def test_missing_metric_is_reported_not_crashed():
    current = _fake_report()
    del current["engine_process_driven"]
    report = perfbench.check_regressions(current, _fake_report())
    rows = {r["metric"]: r for r in report["metrics"]}
    assert rows["engine_process_driven.speedup"]["skipped"] \
        == "missing in report"
    assert not report["regressed"]


# ---------------------------------------------------------------------------
# absolute criteria gate


def _dp_report(quick=False, server=1.6, e2e=2.2, criteria=None):
    return {
        "benchmark": "repro batched PFS data path",
        "quick": quick,
        "server": {"speedup": server},
        "end_to_end": {"speedup_vs_legacy_datapath": e2e},
        "criteria": criteria if criteria is not None else {
            "end_to_end_speedup_min": 2.0,
            "server_speedup_min": 1.5,
        },
    }


def test_check_criteria_met():
    report = perfbench.check_criteria(_dp_report())
    assert not report["unmet"]
    assert report["checked"] == 2
    assert "verdict: ok" in perfbench.render_criteria(report)


def test_check_criteria_flags_red_baseline():
    # A baseline committed below its own targets fails the gate.
    report = perfbench.check_criteria(_dp_report(server=0.68, e2e=1.22))
    assert report["unmet"]
    rows = {r["criterion"]: r for r in report["criteria"]}
    assert rows["server_speedup_min"]["met"] is False
    assert rows["end_to_end_speedup_min"]["met"] is False
    assert "UNMET" in perfbench.render_criteria(report)


def test_check_criteria_targets_come_from_committed_baseline():
    # Relaxing the criteria in the fresh payload must not help: the
    # committed baseline's targets are the ones judged.
    current = _dp_report(server=1.0, criteria={"server_speedup_min": 0.5})
    committed = _dp_report(criteria={"server_speedup_min": 1.5})
    assert perfbench.check_criteria(current, committed)["unmet"]
    assert not perfbench.check_criteria(current)["unmet"]


def test_check_criteria_skips_scale_sensitive_on_quick():
    report = perfbench.check_criteria(_dp_report(quick=True, e2e=0.1))
    rows = {r["criterion"]: r for r in report["criteria"]}
    assert "skipped" in rows["end_to_end_speedup_min"]
    assert rows["server_speedup_min"]["met"]  # still judged on quick
    assert not report["unmet"]


def test_check_criteria_ignores_flags_and_unmapped_keys():
    core = {
        "benchmark": "repro fast simulation core",
        "quick": False,
        "engine": {"speedup": 4.0},
        "end_to_end": {"speedup_vs_pre_pr": 2.5},
        "criteria": {
            "engine_speedup_min": 3.0,
            "end_to_end_speedup_min": 2.0,
            "engine_ok": True,          # derived flag: not a target
            "made_up_target_min": 9.9,  # no measurement mapping
        },
    }
    report = perfbench.check_criteria(core)
    rows = {r["criterion"]: r for r in report["criteria"]}
    assert "engine_ok" not in rows
    assert rows["made_up_target_min"]["skipped"] == "no measurement mapping"
    assert report["checked"] == 2
    assert not report["unmet"]


# ---------------------------------------------------------------------------
# CLI surfaces


def test_cli_metrics_runs_and_exports(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE", "0")
    json_path = tmp_path / "snap.json"
    om_path = tmp_path / "snap.om"
    rc = main([
        "metrics", "escat", "A", "--fast", "--top", "2",
        "--json", str(json_path), "--openmetrics", str(om_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "busiest servers" in out
    snap = json.loads(json_path.read_text())
    assert snap["schema"] == telemetry.instruments.SCHEMA
    assert om_path.read_text().endswith("# EOF\n")
    # The forced enablement did not leak past the command.
    assert not telemetry.enabled()


def test_cli_cache_stats_and_clear(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    problem = scaled_escat_problem(n_nodes=16, records_per_channel=32)
    result = run_escat("A", problem, seed=SEED)
    cache.store(cache.run_key(kind="cli-stats", problem=problem), result)

    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries: 1" in out
    assert "since creation" in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out
    assert cache.stats()["entries"] == 0


def test_cli_bench_check_gates_on_baseline(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    from repro.experiments import perfbench as pb

    baseline = _fake_report(quick=True)
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(baseline))

    def fake_suite(quick=False):
        return _fake_report(quick=True, scale=0.5)  # 50% regression

    monkeypatch.setattr(pb, "run_suite", fake_suite)
    monkeypatch.setattr(pb, "render", lambda payload: "(suite output)")
    rc = main([
        "bench", "--quick", "--check",
        "--output", str(tmp_path / "out.json"),
        "--datapath-output", "",
        "--baseline", str(base_path),
    ])
    assert rc == 1
    assert "REGRESSION detected" in capsys.readouterr().out

    monkeypatch.setattr(pb, "run_suite", lambda quick=False: baseline)
    rc = main([
        "bench", "--quick", "--check",
        "--output", str(tmp_path / "out.json"),
        "--datapath-output", "",
        "--baseline", str(base_path),
    ])
    assert rc == 0
    assert "verdict: ok" in capsys.readouterr().out

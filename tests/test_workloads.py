"""Tests for the synthetic workload generator and benchmark suite."""

import pytest

from repro.errors import WorkloadError
from repro.machine import MachineConfig
from repro.pablo import IOOp
from repro.pfs.modes import AccessMode
from repro.units import KB
from repro.workloads import (
    BENCHMARK_SUITE,
    PartitionedPattern,
    RandomPattern,
    SequentialPattern,
    SharedReadPattern,
    StridedPattern,
    SyntheticWorkload,
    WorkloadPhase,
    benchmark_by_name,
    build_suite,
    run_workload,
)

SMALL_MACHINE = MachineConfig(
    mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=4
)


# ---------------------------------------------------------------- patterns
def test_sequential_pattern_partitions():
    p = SequentialPattern(requests_per_node=10)
    assert p.offset(0, 0, 100, 4) == 0
    assert p.offset(0, 1, 100, 4) == 100
    assert p.offset(1, 0, 100, 4) == 1000
    assert p.offset(3, 9, 100, 4) == 3900


def test_sequential_pattern_requires_count():
    p = SequentialPattern()
    with pytest.raises(WorkloadError):
        p.offset(0, 0, 100, 4)


def test_strided_pattern_interleaves():
    p = StridedPattern()
    assert p.offset(0, 0, 100, 4) == 0
    assert p.offset(1, 0, 100, 4) == 100
    assert p.offset(0, 1, 100, 4) == 400
    # No two (rank, index) pairs collide.
    offsets = {
        p.offset(r, i, 100, 4) for r in range(4) for i in range(8)
    }
    assert len(offsets) == 32


def test_partitioned_pattern_with_holes():
    p = PartitionedPattern(partition_bytes=1000)
    assert p.offset(2, 3, 100, 4) == 2300
    with pytest.raises(WorkloadError):
        PartitionedPattern(partition_bytes=50).offset(0, 0, 100, 4)


def test_shared_read_pattern_same_for_all_ranks():
    p = SharedReadPattern()
    assert p.offset(0, 5, 100, 4) == p.offset(3, 5, 100, 4) == 500
    assert p.total_bytes(10, 100, 4) == 1000  # not multiplied by nodes


def test_random_pattern_stable_and_bounded():
    p = RandomPattern(file_blocks=16, seed=3)
    first = p.offset(1, 2, 100, 4)
    assert first == p.offset(1, 2, 100, 4)  # index-stable
    for r in range(4):
        for i in range(20):
            off = p.offset(r, i, 100, 4)
            assert off % 100 == 0 and off < 1600


def test_pattern_invalid_args():
    p = StridedPattern()
    with pytest.raises(WorkloadError):
        p.offset(0, 0, 0, 4)
    with pytest.raises(WorkloadError):
        p.offset(0, 0, 100, 0)


# ---------------------------------------------------------------- generator
def test_run_workload_basic_write():
    wl = SyntheticWorkload(
        name="t", n_nodes=4,
        phases=(
            WorkloadPhase(
                name="w", kind="write", path="/pfs/t",
                pattern=StridedPattern(), request_size=4 * KB,
                requests_per_node=5, mode=AccessMode.M_ASYNC,
                use_gopen=True,
            ),
        ),
    )
    result = run_workload(wl, machine_config=SMALL_MACHINE)
    writes = result.trace.by_op(IOOp.WRITE)
    assert len(writes) == 20
    assert result.trace.meta.application == "synthetic"


def test_run_workload_read_phase_prepopulated():
    wl = SyntheticWorkload(
        name="t", n_nodes=4,
        phases=(
            WorkloadPhase(
                name="r", kind="read", path="/pfs/t",
                pattern=SequentialPattern(), request_size=1 * KB,
                requests_per_node=8,
            ),
        ),
    )
    result = run_workload(wl, machine_config=SMALL_MACHINE)
    reads = result.trace.by_op(IOOp.READ)
    assert len(reads) == 32
    assert all(e.nbytes == 1 * KB for e in reads.events)


def test_run_workload_participants_subset():
    wl = SyntheticWorkload(
        name="t", n_nodes=4,
        phases=(
            WorkloadPhase(
                name="w", kind="write", path="/pfs/t",
                pattern=StridedPattern(), request_size=1 * KB,
                requests_per_node=3, participants=(0, 2),
                mode=AccessMode.M_ASYNC, use_gopen=True,
            ),
        ),
    )
    result = run_workload(wl, machine_config=SMALL_MACHINE)
    writers = {e.node for e in result.trace.by_op(IOOp.WRITE).events}
    assert writers == {0, 2}


def test_run_workload_mglobal_collective():
    wl = SyntheticWorkload(
        name="t", n_nodes=4,
        phases=(
            WorkloadPhase(
                name="r", kind="read", path="/pfs/t",
                pattern=SharedReadPattern(), request_size=1 * KB,
                requests_per_node=4, mode=AccessMode.M_GLOBAL,
                use_gopen=True,
            ),
        ),
    )
    result = run_workload(wl, machine_config=SMALL_MACHINE)
    reads = result.trace.by_op(IOOp.READ)
    assert len(reads) == 16  # traced per node
    assert {e.mode for e in reads.events} == {"M_GLOBAL"}


def test_workload_validation():
    with pytest.raises(WorkloadError):
        SyntheticWorkload(name="t", n_nodes=0, phases=()).validate()
    with pytest.raises(WorkloadError):
        SyntheticWorkload(name="t", n_nodes=2, phases=()).validate()
    bad_phase = WorkloadPhase(
        name="w", kind="scribble", path="/x",
        pattern=StridedPattern(), request_size=10, requests_per_node=1,
    )
    with pytest.raises(WorkloadError):
        SyntheticWorkload(name="t", n_nodes=2, phases=(bad_phase,)).validate()


# ---------------------------------------------------------------- suite
def test_suite_has_documented_entries():
    expected = {
        "compulsory-shared-read", "compulsory-global-read",
        "staging-small-strided-write", "staging-small-async-write",
        "reload-record-read", "unbuffered-small-read",
        "partitioned-large-write", "segmented-sequential-read",
        "random-small-read", "checkpoint-bursts",
        "sync-variable-write", "log-append",
    }
    assert set(BENCHMARK_SUITE) == expected


def test_suite_rebuild_for_other_node_count():
    wl = benchmark_by_name("reload-record-read", n_nodes=4)
    assert wl.n_nodes == 4
    result = run_workload(wl, machine_config=SMALL_MACHINE)
    assert len(result.trace.by_op(IOOp.READ)) == 4 * 16


def test_suite_unknown_name():
    with pytest.raises(WorkloadError):
        benchmark_by_name("nope")


def test_suite_invalid_node_count():
    with pytest.raises(WorkloadError):
        build_suite(n_nodes=1)


def test_global_vs_unix_shared_read_ordering():
    """The headline suite result: aggregation beats serialization."""
    unix = run_workload(
        benchmark_by_name("compulsory-shared-read", n_nodes=8),
        machine_config=SMALL_MACHINE,
    )
    glob = run_workload(
        benchmark_by_name("compulsory-global-read", n_nodes=8),
        machine_config=SMALL_MACHINE,
    )
    assert glob.io_node_seconds < unix.io_node_seconds

"""Smoke checks for the performance suite (tier-1 wiring).

These keep the bench machinery honest — the workloads run, the report
has the documented shape, and the CLI exposes it — without asserting
speedup ratios, which a loaded CI box cannot measure reliably.  The
real numbers come from ``repro bench`` / ``benchmarks/run_perf.sh``
(``--quick`` finishes in under a minute) and land in
``BENCH_core.json``.
"""

import json

from repro.experiments import perfbench
from repro.sim import Engine


def test_churn_workload_counts_events():
    env = Engine()
    assert perfbench._churn(env, 2_000, fan=255) == 2_000
    assert env.peek() == float("inf") or env.peek() > 0  # drained cleanly


def test_compare_reports_both_kernels():
    out = perfbench._compare(
        lambda env: perfbench._churn(env, 5_000, fan=255), repeats=1
    )
    assert out["legacy_events_per_s"] > 0
    assert out["fast_events_per_s"] > 0
    assert out["speedup"] > 0
    assert out["repeats"] == 1


def test_tracer_bench_shape():
    out = perfbench.bench_tracer(quick=True)
    assert out["records_per_s"] > 0
    assert out["finish_records_per_s"] > 0
    assert out["n_records"] == 100_000


def test_report_render_and_write(tmp_path):
    payload = {
        "benchmark": "repro fast simulation core",
        "quick": True,
        "engine": {
            "legacy_events_per_s": 100, "fast_events_per_s": 400,
            "speedup": 4.0, "repeats": 1, "workload": "w",
        },
        "engine_process_driven": {
            "legacy_events_per_s": 100, "fast_events_per_s": 200,
            "speedup": 2.0, "repeats": 1, "workload": "w",
        },
        "tracer": {
            "records_per_s": 1000, "finish_records_per_s": 1000,
            "n_records": 10,
        },
        "end_to_end": {
            "fresh_wall_s": 1.0, "cached_wall_s": 0.5, "records": 10,
            "speedup_vs_pre_pr": 5.0, "cached_speedup_vs_pre_pr": 10.0,
        },
        "baseline_pre_pr": perfbench.PRE_PR_BASELINE,
        "criteria": {
            **perfbench.CRITERIA, "engine_ok": True, "end_to_end_ok": True,
        },
        "environment": {},
        "suite_wall_s": 2.0,
    }
    text = perfbench.render(payload)
    assert "speedup 4.00x" in text
    assert "ok" in text
    out = tmp_path / "BENCH_core.json"
    perfbench.write_report(payload, str(out))
    assert json.loads(out.read_text())["engine"]["speedup"] == 4.0


def test_datapath_decomposition_bench_shape():
    out = perfbench.bench_datapath_decomposition(quick=True)
    assert out["scalar_pieces_per_s"] > 0
    assert out["vectorized_pieces_per_s"] > 0
    assert out["speedup"] > 0


def test_datapath_server_load_runs():
    requests = 2 * 10 * 2
    wall = perfbench._server_load_run(True, n_ranks=2, ops=10)
    assert wall > 0
    assert requests / wall > 0


def test_datapath_render(tmp_path):
    payload = {
        "benchmark": "repro batched PFS data path",
        "quick": True,
        "decomposition": {
            "workload": "w", "scalar_pieces_per_s": 100,
            "vectorized_pieces_per_s": 1000, "speedup": 10.0,
        },
        "server": {
            "workload": "w", "legacy_requests_per_s": 100,
            "fast_requests_per_s": 150, "speedup": 1.5,
        },
        "end_to_end": {
            "scale": "paper", "fast_wall_s": 4.0, "legacy_wall_s": 8.0,
            "records": 10, "speedup_vs_legacy_datapath": 2.0,
            "speedup_vs_pr1_baseline": 2.09,
        },
        "baseline_pr1": perfbench.DATAPATH_BASELINE,
        "criteria": perfbench.DATAPATH_CRITERIA,
        "environment": {},
        "suite_wall_s": 2.0,
    }
    text = perfbench.render_datapath(payload)
    assert "speedup 10.00x" in text
    assert "PR 1 baseline" in text
    out = tmp_path / "BENCH_datapath.json"
    perfbench.write_report(payload, str(out))
    assert json.loads(out.read_text())["server"]["speedup"] == 1.5


def test_cli_exposes_bench_and_cache_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["bench", "--quick", "--output", "x.json"])
    assert args.quick and args.output == "x.json"
    assert args.datapath_output == "BENCH_datapath.json"
    args = parser.parse_args(["validate", "--jobs", "4", "--no-cache"])
    assert args.jobs == 4 and args.no_cache
    args = parser.parse_args(["all", "--jobs", "2"])
    assert args.jobs == 2 and not args.no_cache

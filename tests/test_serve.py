"""Tests for the traffic-serving simulation service.

Covers the tentpole contracts: spec validation through the sweep
grid's machinery, the cache-backed hot path (repeat queries never
simulate), concurrent dedup (N clients, one simulation), byte-identity
of served SDDF with the CLI trace path, the shared status serializer,
graceful SIGTERM drain, and SIGKILL-resumable journals.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.rules import SCOPED_PACKAGES
from repro.cli import build_parser, main
from repro.errors import ServeSpecError
from repro.experiments import sweep
from repro.experiments.sweep.aggregate import (
    METRIC_COLUMNS,
    PARAM_COLUMNS,
)
from repro.serve import (
    ReproServeServer,
    RunRequest,
    ServeClient,
    read_serve_journal,
)


@pytest.fixture
def serve_pair(tmp_path, monkeypatch):
    """A started server (fresh cache dir + journal) and its client."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    server = ReproServeServer(
        port=0, workers=2, retries=1,
        journal=tmp_path / "serve.jsonl",
    )
    server.start()
    yield server, ServeClient(server.url)
    server.stop(drain_timeout=30.0)


# -- spec validation ------------------------------------------------------

def test_run_request_reuses_grid_validation():
    req = RunRequest.from_dict(
        {"kind": "probe", "version": "ok", "seed": 3}
    )
    assert req.run_key
    assert req.point.point_id
    # Same machinery as SweepGrid.from_dict: same rejections.
    for bad in (
        {"kind": "nope", "version": "A"},
        {"kind": "probe", "version": "ok", "surprise": 1},
        {"kind": "probe", "version": "ok", "seed": "three"},
        {"kind": "probe", "version": "ok", "seed": True},
        {"kind": "probe", "version": "ok",
         "machine": {"n_io_nodes": -1}},
        {"kind": "probe", "version": "ok",
         "fault": {"class": "not-a-fault", "horizon": 1.0}},
        {"kind": "probe", "version": "definitely-not-a-behavior"},
        "not a dict",
    ):
        with pytest.raises(ServeSpecError):
            RunRequest.from_dict(bad)


def test_run_request_matches_cli_cache_key():
    # The serve spec and the CLI/runner path must land on the same
    # content-addressed cache entry — that is the whole hot path.
    from repro.experiments.runner import plan_run

    req = RunRequest.from_dict(
        {"kind": "escat", "version": "A", "fast": True, "seed": 71}
    )
    assert req.run_key == plan_run(
        "escat", "A", fast=True, seed=71
    ).key


def test_run_request_canonical_round_trips():
    spec = {"kind": "probe", "version": "ok", "seed": 9, "fast": True,
            "machine": {"n_io_nodes": 4}, "name": "n1",
            "telemetry": True}
    req = RunRequest.from_dict(spec)
    again = RunRequest.from_dict(req.canonical())
    assert again.run_key == req.run_key
    assert again.canonical() == req.canonical()


# -- round trip / hot path ------------------------------------------------

def test_escat_round_trip_byte_identical_with_cli(
    serve_pair, tmp_path, monkeypatch
):
    server, client = serve_pair
    # The CLI trace path first (stores into the shared run cache).
    # The runner's in-process memo must not short-circuit the disk
    # store (this test's cache dir is fresh), so clear it.
    from repro.experiments import runner

    monkeypatch.setattr(runner, "_CACHE", {})
    out = tmp_path / "cli.sddf"
    assert main(["trace", "escat", "A", str(out), "--fast"]) == 0
    cli_text = out.read_text()
    # ...then the same logical run through the service: answered from
    # the cache, byte-identical, zero simulations server-side.
    doc = client.submit({"kind": "escat", "version": "A", "fast": True})
    assert doc["state"] == "done"
    assert doc["cache_hit"] is True
    result = client.result(doc["job"])
    assert result["sddf"] == cli_text
    assert server.manager.counters["executed"] == 0
    assert server.manager.counters["cache_hits"] == 1


def test_fresh_run_then_repeat_hits_cache(serve_pair):
    server, client = serve_pair
    spec = {"kind": "probe", "version": "ok", "seed": 31}
    doc = client.submit(spec)
    doc = client.wait(doc["job"], timeout=60.0)
    assert doc["state"] == "done"
    assert server.manager.counters["executed"] == 1
    # The repeat answers from the cache without waking a worker.
    again = client.submit(spec)
    assert again["state"] == "done"
    assert again["cache_hit"] is True
    assert again["job"] != doc["job"]
    assert server.manager.counters["executed"] == 1
    # Summaries agree (the sidecar carries the full summary row).
    for key in ("wall_time", "events", "io_node_seconds"):
        assert again["point"][key] == doc["point"][key]


def test_concurrent_same_spec_simulates_once(serve_pair):
    server, client = serve_pair
    n = 6
    spec = {"kind": "probe", "version": "slow", "seed": 77}
    barrier = threading.Barrier(n)
    docs = [None] * n
    errors = []

    def submit(i):
        try:
            barrier.wait(timeout=10.0)
            local = ServeClient(server.url)
            doc = local.submit(spec)
            docs[i] = local.wait(doc["job"], timeout=60.0)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=90.0)
    assert not errors
    assert all(doc is not None and doc["state"] == "done"
               for doc in docs)
    # One simulation total: every other client either attached to the
    # in-flight job (same id) or answered from the cache it produced.
    assert server.manager.counters["executed"] == 1
    fresh_ids = {doc["job"] for doc in docs if not doc["cache_hit"]}
    assert len(fresh_ids) == 1


def test_name_idempotency(serve_pair):
    server, client = serve_pair
    spec = {"kind": "probe", "version": "ok", "seed": 41, "name": "n1"}
    doc = client.submit(spec)
    doc = client.wait(doc["job"], timeout=60.0)
    again = client.submit(spec)
    assert again["job"] == doc["job"]
    # Lookup works by name too.
    assert client.job("n1")["job"] == doc["job"]


# -- events / metrics -----------------------------------------------------

def test_events_stream_lifecycle_and_samples(serve_pair):
    server, client = serve_pair
    doc = client.submit({"kind": "probe", "version": "ok", "seed": 51,
                         "telemetry": True})
    client.wait(doc["job"], timeout=60.0)
    events = list(client.events(doc["job"]))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "queued"
    assert "running" in kinds
    assert "done" in kinds
    assert kinds[-1] == "end"
    assert events[-1]["state"] == "done"
    samples = [e for e in events if e["event"] == "sample"]
    assert samples, "telemetry run must stream sampler rows"
    assert all("t" in s for s in samples)
    # Monotone time axis straight from the SimTimeSampler grid.
    ts = [s["t"] for s in samples]
    assert ts == sorted(ts)


def test_metrics_and_status_endpoints(serve_pair):
    server, client = serve_pair
    doc = client.submit({"kind": "probe", "version": "ok", "seed": 61})
    client.wait(doc["job"], timeout=60.0)
    text = client.metrics()
    assert "# TYPE serve_jobs_submitted gauge" in text
    assert "serve_jobs_done" in text
    assert "serve_workers_alive" in text
    status = client.status()
    assert status["workers"]["slots"] == 2
    assert status["counters"]["executed"] == 1
    assert status["jobs"]["done"] == 1
    stats = client.cache_stats()
    assert stats["enabled"] is True
    assert stats["entries"] >= 1


# -- shared status serializer (satellite 1) -------------------------------

def test_sweep_status_json_shares_serve_row_shape(tmp_path, capsys):
    grid = sweep.SweepGrid.from_dict({
        "name": "statusdemo",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [301, 302],
    })
    journal = tmp_path / "s.jsonl"
    sweep.run_grid(grid, journal, jobs=2, backoff=0.01)
    assert main(["sweep", "status", str(journal), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["grid"] == "statusdemo"
    assert payload["counts"] == {
        "total": 2, "done": 2, "quarantined": 0, "pending": 0,
    }
    expected_keys = set(PARAM_COLUMNS) | set(METRIC_COLUMNS)
    assert all(set(row) == expected_keys for row in payload["points"])


def test_serve_job_point_row_matches_status_rows(serve_pair):
    server, client = serve_pair
    doc = client.submit({"kind": "probe", "version": "ok", "seed": 71})
    doc = client.wait(doc["job"], timeout=60.0)
    # The embedded point row is exactly one sweep-status row: the two
    # surfaces share the serializer, so the key sets are identical.
    assert set(doc["point"]) == set(PARAM_COLUMNS) | set(METRIC_COLUMNS)
    assert doc["point"]["status"] == "done"
    assert doc["point"]["wall_time"] > 0


# -- graceful shutdown (satellite 2) --------------------------------------

def _boot_subprocess_server(tmp_path, extra_args=()):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1",
         "--journal", str(tmp_path / "serve.jsonl"), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    line = proc.stdout.readline()
    assert "listening on" in line, line
    url = line.split("listening on ")[1].split()[0]
    return proc, url


def test_sigterm_drains_and_journals(tmp_path):
    proc, url = _boot_subprocess_server(tmp_path)
    try:
        client = ServeClient(url)
        ids = [
            client.submit({"kind": "probe", "version": "slow",
                           "seed": 400 + i})["job"]
            for i in range(3)
        ]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
    state = read_serve_journal(tmp_path / "serve.jsonl")
    assert state is not None
    journaled = {record["job"] for record in state.jobs}
    assert journaled == set(ids)
    assert state.shutdowns, "graceful exit must journal a shutdown"
    pending = set(state.shutdowns[-1]["pending"])
    # Exact partition: every submitted job either finished (journaled
    # done) or was journaled pending at shutdown — nothing vanished.
    assert (set(state.done) | pending) == set(ids)
    assert set(state.done).isdisjoint(pending)


def test_sigkill_leaves_journal_resumable(tmp_path, monkeypatch):
    proc, url = _boot_subprocess_server(tmp_path)
    try:
        client = ServeClient(url)
        ids = [
            client.submit({"kind": "probe", "version": "slow",
                           "seed": 500 + i})["job"]
            for i in range(4)
        ]
        # Kill while the backlog is outstanding: no drain, no
        # shutdown record, possibly a torn final journal line.
        proc.kill()
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
    state = read_serve_journal(tmp_path / "serve.jsonl")
    assert state is not None
    assert {record["job"] for record in state.jobs} == set(ids)
    assert not state.shutdowns
    # Restart over the same journal (and the same run cache): the
    # interrupted jobs re-queue under their original ids and finish.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    server = ReproServeServer(port=0, workers=1,
                              journal=tmp_path / "serve.jsonl")
    server.start()
    try:
        restarted = ServeClient(server.url)
        for job_id in ids:
            doc = restarted.wait(job_id, timeout=60.0)
            assert doc["state"] == "done"
        # Journal-recovered completions were either already cached
        # (run completed pre-kill) or simulated exactly once now.
        assert server.manager.counters["executed"] <= len(ids)
    finally:
        server.stop(drain_timeout=30.0)
    # The journal now records every job done.
    state = read_serve_journal(tmp_path / "serve.jsonl")
    assert set(state.done) | {
        record["job"] for record in state.jobs
        if record["job"] not in state.done
    } == set(ids)


def test_torn_final_journal_line_is_tolerated(tmp_path):
    path = tmp_path / "serve.jsonl"
    path.write_text(
        '{"kind": "serve", "event": "header", "version": 1}\n'
        '{"event": "job", "job": "j00001-aaaaaaaa", "seq": 1,'
        ' "spec": {"kind": "probe", "version": "ok", "seed": 1}}\n'
        '{"event": "done", "job": "j00001-aaa'  # torn mid-append
    )
    state = read_serve_journal(path)
    assert len(state.jobs) == 1
    assert not state.done


# -- lint scope (satellite 6) ---------------------------------------------

def test_serve_is_outside_determinism_scope():
    assert "serve" not in SCOPED_PACKAGES


def test_serve_package_lints_clean():
    from repro.analysis import lint_paths, report_payload

    reports = lint_paths(["src/repro/serve"])
    assert report_payload(reports)["finding_count"] == 0


# -- CLI parser -----------------------------------------------------------

def test_parser_accepts_serve_commands():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--port", "0", "--workers", "3",
         "--journal", "j.jsonl", "--max-queue", "9"]
    )
    assert args.workers == 3 and args.max_queue == 9
    args = parser.parse_args(
        ["submit", "escat", "A", "--fast", "--seed", "7",
         "--name", "n1", "--telemetry", "--io-nodes", "4",
         "--no-wait", "--url", "http://h:1"]
    )
    assert args.kind == "escat" and args.io_nodes == 4
    assert args.no_wait and args.telemetry
    args = parser.parse_args(["jobs", "j00001-abc", "--events"])
    assert args.job == "j00001-abc" and args.events
    args = parser.parse_args(["sweep", "status", "j.jsonl", "--json"])
    assert args.json
    args = parser.parse_args(
        ["bench", "--serve-only", "--serve-output", "B.json"]
    )
    assert args.serve_only and args.serve_output == "B.json"


def test_submit_cli_against_live_server(serve_pair, tmp_path, capsys):
    server, _ = serve_pair
    rc = main([
        "submit", "probe", "ok", "--seed", "81",
        "--url", server.url, "--output", str(tmp_path / "out.sddf"),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "done" in out
    assert (tmp_path / "out.sddf").read_text().startswith("#SDDF-IO")
    rc = main(["jobs", "--url", server.url])
    assert rc == 0
    assert "j00001" in capsys.readouterr().out

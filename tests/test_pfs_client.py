"""Integration tests for the PFS client: modes, pointers, integrity."""

import pytest

from repro.errors import AccessModeError, FileNotOpenError, PFSError
from repro.pablo import IOOp
from repro.pfs import AccessMode
from repro.units import KB

from tests.conftest import run_procs


# ---------------------------------------------------------------- basics
def test_open_write_read_roundtrip(small_world):
    eng, machine, pfs, tracer = small_world
    results = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        token = yield from cli.write(h, 1000)
        yield from cli.seek(h, 0)
        extents = yield from cli.read(h, 1000)
        results["token"] = token
        results["extents"] = extents
        yield from cli.close(h)

    run_procs(eng, proc())
    assert len(results["extents"]) == 1
    assert results["extents"][0].token == results["token"]
    assert results["extents"][0].start == 0
    assert results["extents"][0].end == 1000


def test_sequential_writes_advance_pointer(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        for _ in range(5):
            yield from cli.write(h, 100)
        assert h.offset == 500
        assert h.state.size == 500
        yield from cli.close(h)

    run_procs(eng, proc())


def test_read_after_close_raises(small_world):
    eng, machine, pfs, tracer = small_world
    failures = []

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        yield from cli.close(h)
        try:
            yield from cli.read(h, 10)
        except FileNotOpenError:
            failures.append("caught")

    run_procs(eng, proc())
    assert failures == ["caught"]


def test_double_close_raises(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        yield from cli.close(h)
        try:
            yield from cli.close(h)
        except (PFSError, FileNotOpenError):
            caught.append(True)

    run_procs(eng, proc())
    assert caught == [True]


def test_seek_sets_offset(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        yield from cli.write(h, 10 * KB)
        pos = yield from cli.seek(h, 4 * KB)
        assert pos == 4 * KB and h.offset == 4 * KB
        extents = yield from cli.read(h, KB)
        assert extents[0].start == 4 * KB
        yield from cli.close(h)

    run_procs(eng, proc())


def test_negative_seek_rejected(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        with pytest.raises(PFSError):
            yield from cli.seek(h, -5)
        yield from cli.close(h)

    run_procs(eng, proc())


def test_read_of_hole_returns_no_extents(small_world):
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        got["extents"] = (yield from cli.read(h, 1000))
        yield from cli.close(h)

    run_procs(eng, proc())
    assert got["extents"] == []


def test_every_operation_is_traced(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        cli.phase = "phase-one"
        h = yield from cli.open("/pfs/data")
        yield from cli.write(h, 100)
        yield from cli.seek(h, 0)
        yield from cli.read(h, 100)
        yield from cli.flush(h)
        yield from cli.close(h)

    run_procs(eng, proc())
    trace = tracer.finish()
    ops = [e.op for e in trace.events]
    assert ops == [
        IOOp.OPEN, IOOp.WRITE, IOOp.SEEK, IOOp.READ, IOOp.FLUSH, IOOp.CLOSE,
    ]
    assert all(e.phase == "phase-one" for e in trace.events)
    assert all(e.duration > 0 for e in trace.events)
    assert trace.events[1].nbytes == 100


def test_write_spanning_stripes_hits_multiple_servers(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/big")
        yield from cli.write(h, 256 * KB)  # 4 stripes over 4 io nodes
        yield from cli.close(h)

    run_procs(eng, proc())
    touched = [s for s in pfs.servers if s.writes > 0]
    assert len(touched) == 4


def test_striped_read_parallel_speedup(small_world):
    """A 4-stripe read should take much less than 4x a 1-stripe read."""
    eng, machine, pfs, tracer = small_world
    times = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/big", buffered=False)
        yield from cli.write(h, 512 * KB)
        yield from cli.seek(h, 0)
        t0 = eng.now
        yield from cli.read(h, 64 * KB)
        times["one"] = eng.now - t0
        # Invalidate sequentiality/cache effects by reading fresh area.
        yield from cli.seek(h, 64 * KB)
        t0 = eng.now
        yield from cli.read(h, 256 * KB)
        times["four"] = eng.now - t0
        yield from cli.close(h)

    run_procs(eng, proc())
    assert times["four"] < 2.5 * times["one"]


# ---------------------------------------------------------------- M_UNIX
def test_munix_shared_file_serializes_reads(small_world):
    """Concurrent reads by many nodes on a shared M_UNIX file must
    serialize through the atomicity token (the ESCAT-A phase-1
    behaviour)."""
    eng, machine, pfs, tracer = small_world

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/init")
        yield from cli.write(h, 64 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())

    from repro.sim import Barrier

    barrier = Barrier(eng, parties=8)

    def reader(rank):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/init", buffered=False)
        yield barrier.wait()  # everyone opens before anyone reads
        yield from cli.read(h, 1 * KB)
        yield from cli.close(h)

    run_procs(eng, *(reader(r) for r in range(8)))
    trace = tracer.finish().by_op(IOOp.READ)
    durations = sorted(e.duration for e in trace.events)
    # Later arrivals waited behind earlier holders: spread of durations.
    assert durations[-1] > durations[0] * 3


def test_munix_sole_opener_skips_token(small_world):
    """A file opened by one node only is not serialized: node-zero
    writes stay cheap (the paper's version-A write observation)."""
    eng, machine, pfs, tracer = small_world

    def solo():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/out")
        for _ in range(10):
            yield from cli.write(h, 2 * KB)
        yield from cli.close(h)

    run_procs(eng, solo())
    writes = tracer.finish().by_op(IOOp.WRITE)
    durations = sorted(e.duration for e in writes.events)
    # Sequential small write-through: a few ms each, no token waits.
    # (Only the very first write pays positioning + parity RMW.)
    assert durations[len(durations) // 2] < 0.02
    assert durations[-1] < 0.1


def test_munix_shared_seek_is_expensive_local_seek_cheap(small_world):
    eng, machine, pfs, tracer = small_world
    from repro.sim import Barrier

    barrier = Barrier(eng, parties=2)
    durations = {}

    def opener(rank, results, parties=None):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/shared")
        if parties:
            yield barrier.wait()  # both opened: file is now shared
        t0 = eng.now
        yield from cli.seek(h, 1000)
        results[rank] = eng.now - t0
        yield from cli.close(h)

    shared = {}
    run_procs(eng, opener(0, shared, 2), opener(1, shared, 2))

    solo = {}
    run_procs(eng, opener(5, solo))  # sole opener
    # Shared seek pays the token round trip; solo seek is local.
    assert min(shared.values()) > 100 * solo[5]


# ---------------------------------------------------------------- M_ASYNC
def test_masync_seek_and_write_cheap(small_world):
    eng, machine, pfs, tracer = small_world

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/quad", group=range(4), mode=AccessMode.M_ASYNC
        )
        for i in range(5):
            yield from cli.seek(h, (rank * 5 + i) * 4 * KB)
            yield from cli.write(h, 4 * KB)
        yield from cli.close(h)

    run_procs(eng, *(node(r) for r in range(4)))
    trace = tracer.finish()
    seeks = trace.by_op(IOOp.SEEK)
    writes = trace.by_op(IOOp.WRITE)
    assert max(e.duration for e in seeks.events) < 1e-3
    # Write-behind: ack before disk commit -> much faster than the
    # synchronous small-write path (positioning + parity RMW).
    assert max(e.duration for e in writes.events) < 0.3


def test_masync_data_integrity_disjoint_writers(small_world):
    eng, machine, pfs, tracer = small_world
    tokens = {}
    read_back = {}

    def writer(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/quad", group=range(4), mode=AccessMode.M_ASYNC
        )
        yield from cli.seek(h, rank * 10 * KB)
        tokens[rank] = yield from cli.write(h, 10 * KB)
        yield from cli.close(h)

    run_procs(eng, *(writer(r) for r in range(4)))

    def reader():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/quad")
        for rank in range(4):
            yield from cli.seek(h, rank * 10 * KB)
            extents = yield from cli.read(h, 10 * KB)
            read_back[rank] = [e.token for e in extents]
        yield from cli.close(h)

    run_procs(eng, reader())
    for rank in range(4):
        assert read_back[rank] == [tokens[rank]]


# ---------------------------------------------------------------- M_RECORD
def test_mrecord_fixed_size_enforced(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/rec", group=range(2), mode=AccessMode.M_RECORD
        )
        yield from cli.write(h, 64 * KB)
        try:
            yield from cli.write(h, 32 * KB)
        except AccessModeError:
            caught.append(rank)
        yield from cli.close(h)

    run_procs(eng, node(0), node(1))
    assert sorted(caught) == [0, 1]


def test_mrecord_node_ordered_rounds(small_world):
    """M_RECORD requests are issued in node order each round."""
    eng, machine, pfs, tracer = small_world
    issue_order = []

    def node(rank, delay):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/rec", group=range(3), mode=AccessMode.M_RECORD
        )
        # Stagger arrivals so rank order != arrival order.
        yield eng.timeout(delay)
        yield from cli.write(h, 64 * KB)
        issue_order.append(rank)
        yield from cli.close(h)

    run_procs(eng, node(0, 0.3), node(1, 0.2), node(2, 0.1))
    assert issue_order == [0, 1, 2]


def test_mrecord_reads_distinct_records(small_world):
    eng, machine, pfs, tracer = small_world
    seen = {}

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/rec")
        yield from cli.write(h, 256 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/rec", group=range(4), mode=AccessMode.M_RECORD
        )
        yield from cli.seek(h, rank * 64 * KB)
        extents = yield from cli.read(h, 64 * KB)
        seen[rank] = (extents[0].start, extents[-1].end)
        yield from cli.close(h)

    run_procs(eng, *(node(r) for r in range(4)))
    assert seen == {
        0: (0, 64 * KB),
        1: (64 * KB, 128 * KB),
        2: (128 * KB, 192 * KB),
        3: (192 * KB, 256 * KB),
    }


# ---------------------------------------------------------------- M_GLOBAL
def test_mglobal_single_physical_io(small_world):
    """All nodes read the same data; only one disk read happens."""
    eng, machine, pfs, tracer = small_world

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/input")
        yield from cli.write(h, 32 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())
    reads_before = sum(s.reads for s in pfs.servers)

    got = {}

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/input", group=range(8), mode=AccessMode.M_GLOBAL
        )
        extents = yield from cli.read(h, 32 * KB)
        got[rank] = [e.token for e in extents]
        yield from cli.close(h)

    run_procs(eng, *(node(r) for r in range(8)))
    reads_after = sum(s.reads for s in pfs.servers)
    # One logical read -> at most a piece per stripe, not 8x.
    assert reads_after - reads_before <= 1
    # Every node received the same data.
    assert len({tuple(v) for v in got.values()}) == 1


def test_mglobal_advances_shared_pointer(small_world):
    eng, machine, pfs, tracer = small_world
    rounds = {}

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/input")
        yield from cli.write(h, 8 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/input", group=range(2), mode=AccessMode.M_GLOBAL
        )
        first = yield from cli.read(h, 4 * KB)
        second = yield from cli.read(h, 4 * KB)
        rounds[rank] = (first[0].start, second[0].start)
        yield from cli.close(h)

    run_procs(eng, node(0), node(1))
    assert rounds[0] == (0, 4 * KB)
    assert rounds[1] == (0, 4 * KB)


def test_mglobal_mismatched_sizes_rejected(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def node(rank, size):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/input", group=range(2), mode=AccessMode.M_GLOBAL
        )
        try:
            yield from cli.read(h, size)
        except PFSError:
            caught.append(rank)
            return
        yield from cli.close(h)

    eng.process(node(0, 4 * KB))
    eng.process(node(1, 8 * KB))
    try:
        eng.run()
    except PFSError:
        caught.append("crash")
    assert caught


def test_mglobal_requires_group(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/x")
        h.state.mode = AccessMode.M_GLOBAL  # bypass setiomode: no group
        try:
            yield from cli.read(h, 10)
        except AccessModeError:
            caught.append(True)

    run_procs(eng, proc())
    assert caught == [True]


# ---------------------------------------------------------------- M_SYNC / M_LOG
def test_msync_shared_pointer_node_order(small_world):
    """M_SYNC: shared pointer, node-ordered, variable sizes."""
    eng, machine, pfs, tracer = small_world
    regions = {}

    def node(rank, size):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/sync", group=range(3), mode=AccessMode.M_SYNC
        )
        token = yield from cli.write(h, size)
        regions[rank] = (size, token)
        yield from cli.close(h)

    sizes = {0: 1000, 1: 2000, 2: 500}
    run_procs(eng, *(node(r, s) for r, s in sizes.items()))

    def reader():
        cli = pfs.client(5)
        h = yield from cli.open("/pfs/sync")
        extents = yield from cli.read(h, 3500)
        regions["layout"] = [(e.start, e.end, e.token) for e in extents]
        yield from cli.close(h)

    run_procs(eng, reader())
    # Node order despite concurrent arrival: 0 at [0,1000), 1 at
    # [1000,3000), 2 at [3000,3500).
    assert regions["layout"] == [
        (0, 1000, regions[0][1]),
        (1000, 3000, regions[1][1]),
        (3000, 3500, regions[2][1]),
    ]


def test_mlog_appends_fcfs(small_world):
    eng, machine, pfs, tracer = small_world

    def node(rank, delay):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/stdout", group=range(2), mode=AccessMode.M_LOG
        )
        yield eng.timeout(delay)
        yield from cli.write(h, 100)
        yield from cli.close(h)

    run_procs(eng, node(0, 0.2), node(1, 0.1))
    # Both writes landed at distinct offsets (no overwrite).
    state = pfs.namespace.lookup("/pfs/stdout")
    assert state.size == 200
    assert state.extents.covered_bytes(0, 200) == 200


# ---------------------------------------------------------------- gopen/iomode
def test_gopen_cheaper_than_n_opens(small_world):
    eng, machine, pfs, tracer = small_world

    def via_open(rank):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/a")
        yield from cli.close(h)

    def via_gopen(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen("/pfs/b", group=range(8))
        yield from cli.close(h)

    run_procs(eng, *(via_open(r) for r in range(8)))
    run_procs(eng, *(via_gopen(r) for r in range(8)))
    trace = tracer.finish()
    open_time = sum(e.duration for e in trace.by_op(IOOp.OPEN).events)
    gopen_time = sum(e.duration for e in trace.by_op(IOOp.GOPEN).events)
    assert gopen_time < open_time / 4


def test_gopen_straggler_wait_is_charged(small_world):
    """Early gopen arrivals wait for the last group member."""
    eng, machine, pfs, tracer = small_world
    durations = {}

    def node(rank, delay):
        cli = pfs.client(rank)
        yield eng.timeout(delay)
        t0 = eng.now
        h = yield from cli.gopen("/pfs/a", group=range(2))
        durations[rank] = eng.now - t0
        yield from cli.close(h)

    run_procs(eng, node(0, 0.0), node(1, 5.0))
    assert durations[0] > 4.9  # waited for the straggler
    assert durations[1] < 1.0


def test_setiomode_collective_and_traced(small_world):
    eng, machine, pfs, tracer = small_world

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/a")
        yield from cli.setiomode(h, AccessMode.M_RECORD, group=range(2))
        assert h.state.mode == AccessMode.M_RECORD
        yield from cli.close(h)

    run_procs(eng, node(0), node(1))
    iomodes = tracer.finish().by_op(IOOp.IOMODE)
    assert len(iomodes.events) == 2


def test_gopen_wrong_rank_rejected(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(9)
        with pytest.raises(PFSError):
            yield from cli.gopen("/pfs/a", group=[0, 1])
        yield eng.timeout(0)

    run_procs(eng, proc())


# ---------------------------------------------------------------- buffering
def test_buffered_small_sequential_reads_cheap(small_world):
    eng, machine, pfs, tracer = small_world
    times = {}

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        yield from cli.write(h, 128 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())

    def reader(rank, buffered, tag):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/data", buffered=buffered)
        t0 = eng.now
        for _ in range(100):
            yield from cli.read(h, 40)
        times[tag] = eng.now - t0
        yield from cli.close(h)

    run_procs(eng, reader(1, True, "buffered"))
    run_procs(eng, reader(2, False, "unbuffered"))
    # The paper's PRISM-C effect: unbuffered small reads are
    # disproportionately expensive.
    assert times["unbuffered"] > 5 * times["buffered"]


def test_buffer_integrity_after_overwrite(small_world):
    """A write invalidates stale client buffers (strict coherence)."""
    eng, machine, pfs, tracer = small_world
    observed = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        t1 = yield from cli.write(h, 4 * KB)
        yield from cli.seek(h, 0)
        first = yield from cli.read(h, 100)
        yield from cli.seek(h, 0)
        t2 = yield from cli.write(h, 4 * KB)
        yield from cli.seek(h, 0)
        second = yield from cli.read(h, 100)
        observed["first"] = first[0].token
        observed["second"] = second[0].token
        observed["tokens"] = (t1, t2)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert observed["first"] == observed["tokens"][0]
    assert observed["second"] == observed["tokens"][1]


def test_unbuffered_reads_bypass_server_cache(small_world):
    eng, machine, pfs, tracer = small_world

    def writer():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/data")
        yield from cli.write(h, 4 * KB)
        yield from cli.close(h)

    run_procs(eng, writer())
    hits_before = sum(s.cache.hits for s in pfs.servers)

    def reader():
        cli = pfs.client(1)
        h = yield from cli.open("/pfs/data", buffered=False)
        for _ in range(10):
            yield from cli.seek(h, 0)
            yield from cli.read(h, 40)
        yield from cli.close(h)

    run_procs(eng, reader())
    assert sum(s.cache.hits for s in pfs.servers) == hits_before


def test_large_read_chunked_through_buffer(small_world):
    """With buffering on, a >buffer read is fetched in buffer-size
    chunks (why PRISM-C disabled buffering for the restart body)."""
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/restart")
        yield from cli.write(h, 256 * KB)
        yield from cli.seek(h, 0)
        extents = yield from cli.read(h, 155584)
        got["bytes"] = sum(e.end - e.start for e in extents)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert got["bytes"] == 155584

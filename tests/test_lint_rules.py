"""Fixture tests for the determinism linter (repro.analysis).

Every rule gets a positive (flagged) and negative (clean) source
fixture, the suppression contract is pinned (justified silences,
unjustified/unknown -> SUP901, stale -> SUP902), and the seeded
on-disk violation fixture must keep `repro lint` exiting nonzero.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import lint_paths, lint_source, report_payload
from repro.errors import LintError

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def codes(source, scoped=True, path="sim/mod.py"):
    return [f.code for f in lint_source(source, path=path, scoped=scoped)]


# ---------------------------------------------------------------------
# DET101 — set iteration
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "source",
    [
        "for x in {1, 2, 3}:\n    print(x)\n",
        "for x in set(items):\n    print(x)\n",
        "s = {1, 2}\nfor x in s:\n    print(x)\n",
        "out = [x for x in frozenset(items)]\n",
        "out = list({x for x in items})\n",
        "parts = ','.join({str(x) for x in items})\n",
        "s = {1}\nout = [*s]\n",
        "a = {1}\nb = {2}\nfor x in a | b:\n    print(x)\n",
    ],
)
def test_det101_flags_set_iteration(source):
    assert "DET101" in codes(source)


@pytest.mark.parametrize(
    "source",
    [
        "for x in sorted({1, 2, 3}):\n    print(x)\n",
        "for x in [1, 2, 3]:\n    print(x)\n",
        "n = len({1, 2})\n",
        "n = sum(set(items))\n",
        "m = max({1, 2})\n",
        "seen = {x for x in items}\n",  # SetComp result, not iterated
        "s = {1}\ns = [2]\nfor x in s:\n    print(x)\n",  # rebound non-set
    ],
)
def test_det101_allows_order_safe_uses(source):
    assert "DET101" not in codes(source)


# ---------------------------------------------------------------------
# DET102 — entropy / wall clock
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter()\n",
        "import random\nx = random.random()\n",
        "import uuid\nu = uuid.uuid4()\n",
        "import os\nb = os.urandom(8)\n",
        "import numpy as np\nr = np.random.default_rng()\n",
        "from numpy.random import default_rng\nr = default_rng()\n",
        "import secrets\nt = secrets.token_hex()\n",
    ],
)
def test_det102_flags_entropy(source):
    assert "DET102" in codes(source)


def test_det102_exempts_rng_boundary():
    source = "import random\nx = random.random()\n"
    assert "DET102" not in codes(source, path="src/repro/sim/rng.py")


def test_det102_ignores_unscoped_files():
    source = "import time\nt = time.time()\n"
    assert codes(source, scoped=False, path="tools/bench.py") == []


# ---------------------------------------------------------------------
# DET103 — id() ordering
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "source",
    [
        "out = sorted(events, key=id)\n",
        "events.sort(key=id)\n",
        "first = min(events, key=lambda e: id(e))\n",
        "ok = id(a) < id(b)\n",
    ],
)
def test_det103_flags_id_ordering(source):
    assert "DET103" in codes(source)


@pytest.mark.parametrize(
    "source",
    [
        "same = id(a) == id(b)\n",
        "same = a is b\n",
        "out = sorted(events, key=lambda e: e.seq)\n",
    ],
)
def test_det103_allows_identity_equality(source):
    assert "DET103" not in codes(source)


# ---------------------------------------------------------------------
# DET104 — environ reads
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "source",
    [
        "import os\nv = os.environ.get('REPRO_FAST_CORE')\n",
        "import os\nv = os.environ['HOME']\n",
        "import os\nv = os.getenv('X')\n",
    ],
)
def test_det104_flags_environ(source):
    assert "DET104" in codes(source)


def test_det104_ignores_unscoped_files():
    source = "import os\nv = os.getenv('X')\n"
    assert codes(source, scoped=False, path="experiments/run.py") == []


# ---------------------------------------------------------------------
# HOT201 — telemetry lookups in loops
# ---------------------------------------------------------------------

def test_hot201_flags_lookup_in_loop():
    source = (
        "def run(reg, events):\n"
        "    for e in events:\n"
        "        reg.counter('sim.events').inc()\n"
    )
    assert "HOT201" in codes(source)


def test_hot201_allows_prebound_instrument():
    source = (
        "def run(reg, events):\n"
        "    inc = reg.counter('sim.events').inc\n"
        "    for e in events:\n"
        "        inc()\n"
    )
    assert "HOT201" not in codes(source)


def test_hot201_flags_while_loops_too():
    source = (
        "def run(reg):\n"
        "    while True:\n"
        "        reg.gauge('depth').set(1)\n"
    )
    assert "HOT201" in codes(source)


# ---------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------

def test_justified_suppression_silences_finding():
    source = (
        "import time\n"
        "# repro: allow(DET102): telemetry wall-clock only\n"
        "t = time.time()\n"
    )
    assert codes(source) == []


def test_suppression_by_rule_name_works():
    source = (
        "import time\n"
        "t = time.time()  # repro: allow(entropy): telemetry only\n"
    )
    assert codes(source) == []


def test_unjustified_suppression_is_sup901():
    source = (
        "import time\n"
        "# repro: allow(DET102)\n"
        "t = time.time()\n"
    )
    result = codes(source)
    assert "SUP901" in result
    assert "DET102" in result  # the unjustified allow suppresses nothing


def test_unknown_rule_suppression_is_sup901():
    source = "# repro: allow(DET999): whatever\nx = 1\n"
    assert "SUP901" in codes(source)


def test_stale_suppression_is_sup902():
    source = "# repro: allow(DET102): nothing here\nx = 1\n"
    assert codes(source) == ["SUP902"]


def test_allow_marker_in_string_is_not_a_suppression():
    source = (
        'doc = "# repro: allow(DET102): example"\n'
        "import time\n"
        "t = time.time()\n"
    )
    assert "DET102" in codes(source)


# ---------------------------------------------------------------------
# Driver / fixtures / CLI
# ---------------------------------------------------------------------

def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("def broken(:\n", path="sim/bad.py")


def test_seeded_fixture_produces_expected_codes():
    reports = lint_paths([str(FIXTURES)])
    found = sorted({f.code for r in reports for f in r.findings})
    assert found == [
        "DET101", "DET102", "DET103", "DET104",
        "HOT201", "SUP901", "SUP902",
    ]


def test_fixture_dir_is_scoped_by_path():
    # The fixture lives under a directory literally named sim/, so the
    # path heuristic applies the determinism rules without overrides.
    reports = lint_paths([str(FIXTURES / "sim" / "seeded_violations.py")])
    assert any(f.code == "DET101" for r in reports for f in r.findings)


def test_cli_exits_nonzero_on_fixture(capsys):
    rc = cli.main(["lint", str(FIXTURES)])
    assert rc == 2
    out = capsys.readouterr().out
    assert "DET101" in out and "finding" in out


def test_cli_json_payload(capsys, tmp_path):
    report_file = tmp_path / "lint.json"
    rc = cli.main(
        ["lint", str(FIXTURES), "--json", "--output", str(report_file)]
    )
    assert rc == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["finding_count"] >= 7
    assert payload["findings_by_code"]["DET101"] >= 1
    assert "DET101" in payload["rules"]
    on_disk = json.loads(report_file.read_text())
    assert on_disk["finding_count"] == payload["finding_count"]


def test_cli_clean_on_src(capsys):
    # The acceptance bar: the shipped tree lints clean with every
    # suppression justified.
    rc = cli.main(["lint", str(Path(__file__).parent.parent / "src")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "no findings" in out


def test_cli_rules_catalog(capsys):
    rc = cli.main(["lint", "--rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for code in ("DET101", "DET102", "DET103", "DET104", "HOT201"):
        assert code in out


def test_report_payload_counts():
    reports = lint_paths([str(FIXTURES)])
    payload = report_payload(reports)
    assert payload["files_checked"] == 1
    assert payload["finding_count"] == len(payload["findings"])
    assert sum(payload["findings_by_code"].values()) == (
        payload["finding_count"]
    )

"""End-to-end fault-engine behaviour on real application runs.

Each scenario attaches one :class:`FaultPlan` to an ESCAT run (or a
tiny hand-built workload) and checks the *semantic* outcome: crashes
survived via retries conserve every byte, exhausted retries surface a
``RetryExhaustedError``, lost write-behind buffers are accounted
exactly, and every fault class measurably perturbs the run it targets.
"""

import pytest

from repro.apps import run_escat, scaled_escat_problem
from repro.errors import RetryExhaustedError
from repro.faults import (
    DiskFailure,
    FaultEngine,
    FaultPlan,
    NetworkEpisode,
    NodeCrash,
    SlowDown,
)
from repro.machine import MachineConfig, ParagonXPS
from repro.pablo.records import IOOp
from repro.pfs import PFS, AccessMode
from repro.sim import Engine
from repro.units import KB

SEED = 1996


@pytest.fixture(scope="module")
def baseline():
    problem = scaled_escat_problem()
    return problem, run_escat("A", problem, seed=SEED)


def _rw_bytes(result):
    trace = result.trace
    return (
        int(trace.by_op(IOOp.READ).durations().shape[0]),
        trace.by_op(IOOp.READ).total_bytes,
        trace.by_op(IOOp.WRITE).total_bytes,
    )


def test_crash_with_restart_conserves_every_byte(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(
        NodeCrash(time=1.0, io_node=0, restart_after=2.0, policy="fail"),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.fault_summary is not None
    assert result.fault_summary["retries"] > 0
    assert _rw_bytes(result) == _rw_bytes(base)
    assert result.wall_time >= base.wall_time


def test_crash_without_restart_exhausts_retries(baseline):
    problem, base = baseline
    # Node 0 dies early and never comes back; the coordinator's very
    # first reads land there, so its retry budget must run out.
    plan = FaultPlan(events=(
        NodeCrash(time=0.5, io_node=0, restart_after=None, policy="fail"),
    ))
    with pytest.raises(RetryExhaustedError):
        run_escat("A", problem, seed=SEED, fault_plan=plan)


def test_crash_policy_stall_completes_without_retries(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(
        NodeCrash(time=1.0, io_node=0, restart_after=2.0, policy="stall"),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.fault_summary["retries"] == 0
    assert _rw_bytes(result) == _rw_bytes(base)
    assert result.wall_time >= base.wall_time


def test_network_loss_retries_are_traced(baseline):
    problem, base = baseline
    # Mid-run, inside the traced energy cycles (the setup phase runs
    # with tracing paused, so retries there would not leave records).
    plan = FaultPlan(events=(
        NetworkEpisode(time=base.wall_time * 0.4, duration=1.0,
                       kind="loss"),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    summary = result.fault_summary
    assert summary["messages_lost"] > 0
    assert summary["retries"] > 0
    retries = result.trace.by_op(IOOp.RETRY)
    assert len(retries) == summary["retries"]
    assert _rw_bytes(result) == _rw_bytes(base)


def test_network_stall_delays_without_any_retry(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(
        NetworkEpisode(time=1.0, duration=1.0, kind="stall"),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.fault_summary["retries"] == 0
    assert result.fault_summary["messages_lost"] == 0
    assert result.wall_time > base.wall_time
    assert _rw_bytes(result) == _rw_bytes(base)


def test_disk_failure_degrades_then_rebuilds(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(
        DiskFailure(time=0.5, io_node=0, rebuild_after=10.0),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.wall_time > base.wall_time
    assert result.fault_summary["degraded"] == []  # rebuilt by run end
    applied = "\n".join(result.fault_summary["applied"])
    assert "disk failure" in applied and "rebuild complete" in applied
    assert _rw_bytes(result) == _rw_bytes(base)


def test_permanent_disk_failure_stays_degraded(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(DiskFailure(time=0.5, io_node=3),))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.fault_summary["degraded"] == [3]
    assert _rw_bytes(result) == _rw_bytes(base)


def test_global_slowdown_stretches_the_run(baseline):
    problem, base = baseline
    plan = FaultPlan(events=(
        SlowDown(time=0.1, duration=60.0, io_node=None, factor=10.0),
    ))
    result = run_escat("A", problem, seed=SEED, fault_plan=plan)
    assert result.wall_time > base.wall_time * 1.2
    assert _rw_bytes(result) == _rw_bytes(base)


def _wb_world():
    eng = Engine()
    machine = ParagonXPS(eng, MachineConfig(
        mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=1,
    ))
    pfs = PFS(eng, machine)
    return eng, machine, pfs


def _wb_writer(pfs, n_writes=50, nbytes=4 * KB):
    # Scattered sub-stripe writes: the acks are cheap cache copies but
    # every drain pays full positioning plus the RAID-3 parity
    # read-modify-write, so drains trail the last ack by seconds.
    cli = pfs.client(0)
    handle = yield from cli.open("/pfs/wb-loss")
    yield from cli.setiomode(handle, AccessMode.M_ASYNC, group=[0])
    from repro.units import MB

    for i in range(n_writes):
        yield from cli.seek(handle, i * MB)
        yield from cli.write(handle, nbytes)
    return pfs.env.now


def test_node_crash_destroys_undrained_write_behind_buffers():
    # Pilot run (healthy) to find the window where all client writes
    # are acknowledged but drains are still committing to disk.
    eng, machine, pfs = _wb_world()
    proc = eng.process(_wb_writer(pfs))
    eng.run(until=proc)
    t_acked = proc.value
    eng.run()  # let the drains finish
    t_drained = eng.now
    assert t_drained > t_acked

    crash_at = (t_acked + t_drained) / 2.0
    eng, machine, pfs = _wb_world()
    plan = FaultPlan(events=(
        NodeCrash(time=crash_at, io_node=0, restart_after=None,
                  policy="fail"),
    ))
    faults = FaultEngine(eng, machine, pfs, plan)
    proc = eng.process(_wb_writer(pfs))
    eng.run(until=proc)
    eng.run()  # drains now hit the dead node
    summary = faults.summary()
    assert summary["wb_lost"] > 0
    assert summary["wb_lost_bytes"] == summary["wb_lost"] * 4 * KB


def test_fault_plan_validation_rejects_bad_schedules():
    from repro.errors import FaultError

    with pytest.raises(FaultError):
        FaultPlan(events=(NodeCrash(time=1.0, io_node=99),)).validate(16)
    with pytest.raises(FaultError):
        FaultPlan(events=(
            NodeCrash(time=1.0, io_node=0, policy="stall"),
        )).validate(16)
    with pytest.raises(FaultError):
        FaultPlan(events=(
            NetworkEpisode(time=1.0, duration=2.0),
            NetworkEpisode(time=2.0, duration=1.0),
        )).validate(16)
    with pytest.raises(FaultError):
        FaultPlan(events=(
            NodeCrash(time=1.0, io_node=0, restart_after=5.0),
            NodeCrash(time=3.0, io_node=0, restart_after=1.0),
        )).validate(16)


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan.seeded(seed=7, horizon=60.0, n_io_nodes=16)
    path = tmp_path / "plan.json"
    import json

    path.write_text(json.dumps(plan.to_dict()))
    loaded = FaultPlan.from_file(str(path))
    assert loaded == plan

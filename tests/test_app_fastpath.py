"""Equivalence of the app-layer fast path (``REPRO_FAST_APP``).

Batched submission (``PFS.read_batch`` / ``PFS.write_batch``), the
vectorized channel schedules feeding it, and bulk trace capture are
pure performance features: every workload must produce the
byte-identical SDDF trace — and therefore identical Table-2/Table-3
rows — with the fast path on and off, under both DES kernels and both
data paths, with and without fault injection.  These tests drive the
full ESCAT and PRISM version progressions through all four
kernel × datapath combinations and compare complete outputs, plus a
synthetic write-behind workload whose cache drains mid-batch.
"""

import io

import pytest

from repro.apps import (
    run_escat,
    run_prism,
    scaled_escat_problem,
    scaled_prism_problem,
)
from repro.core.breakdown import execution_fraction, io_time_breakdown
from repro.faults import FaultPlan
from repro.machine import DiskConfig, MachineConfig, NetworkConfig, ParagonXPS
from repro.pablo import Tracer
from repro.pablo.sddf import write_sddf
from repro.pfs import PFS
from repro.pfs.modes import AccessMode
from repro.sim import Engine
from repro.units import KB

APP_VERSIONS = [
    ("escat", "A"), ("escat", "B"), ("escat", "C"),
    ("prism", "A"), ("prism", "B"), ("prism", "C"),
]


def _run_app(app, version, fault_plan=None):
    if app == "escat":
        problem = scaled_escat_problem(n_nodes=8, records_per_channel=16)
        return run_escat(version, problem, seed=7, fault_plan=fault_plan)
    problem = scaled_prism_problem(n_nodes=8)
    return run_prism(version, problem, seed=7, fault_plan=fault_plan)


def _fingerprint(app, version, fault_plan=None):
    """Everything that must be invariant under the fast path."""
    result = _run_app(app, version, fault_plan=fault_plan)
    out = io.StringIO()
    write_sddf(result.trace, out)
    b = io_time_breakdown(result.trace)
    rows = execution_fraction(result.trace, result.wall_time, n_nodes=8)
    return out.getvalue(), result.wall_time, b.totals, b.counts, rows


def _cell(monkeypatch, fast_core, fast_datapath, fast_app):
    monkeypatch.setenv("REPRO_FAST_CORE", "1" if fast_core else "0")
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1" if fast_datapath else "0")
    monkeypatch.setenv("REPRO_FAST_APP", "1" if fast_app else "0")


@pytest.mark.parametrize("fast_core", [True, False], ids=["fc", "lc"])
@pytest.mark.parametrize("fast_datapath", [True, False], ids=["fd", "ld"])
@pytest.mark.parametrize(
    "app,version", APP_VERSIONS, ids=[f"{a}-{v}" for a, v in APP_VERSIONS]
)
def test_fast_app_matches_stepped(
    app, version, fast_datapath, fast_core, monkeypatch
):
    _cell(monkeypatch, fast_core, fast_datapath, True)
    fast = _fingerprint(app, version)
    _cell(monkeypatch, fast_core, fast_datapath, False)
    stepped = _fingerprint(app, version)
    assert fast == stepped


@pytest.mark.parametrize("fast_datapath", [True, False], ids=["fd", "ld"])
def test_fast_app_matches_stepped_faulted(fast_datapath, monkeypatch):
    """Fault-plan cell: retries and degraded service mid-run must not
    perturb batch equivalence (the eligibility gate consults the fault
    schedule; ineligible windows fall back to stepped submission)."""
    _cell(monkeypatch, True, fast_datapath, True)
    plan = FaultPlan.seeded(seed=7, horizon=66.0, n_io_nodes=16)
    fast = _fingerprint("escat", "A", fault_plan=plan)
    _cell(monkeypatch, True, fast_datapath, False)
    plan = FaultPlan.seeded(seed=7, horizon=66.0, n_io_nodes=16)
    stepped = _fingerprint("escat", "A", fault_plan=plan)
    assert fast == stepped


def test_fast_app_counters_fire(monkeypatch):
    """The equivalence above is vacuous if the batch path silently
    falls back everywhere; the run counters prove it engaged."""
    _cell(monkeypatch, True, True, True)
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    result = _run_app("escat", "A")
    app = result.telemetry["app"]
    assert app["batches_submitted"] > 0
    assert app["batch_bytes"] > 0
    assert app["trace_bulk_appends"] > 0
    assert app["trace_bulk_appends"] <= app["batches_submitted"]


def _wb_world(fast_app, monkeypatch):
    """Sole-opener write-behind workload sized past the cache's dirty
    capacity, so drains land in the middle of submitted batches."""
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1")
    monkeypatch.setenv("REPRO_FAST_APP", "1" if fast_app else "0")
    eng = Engine()
    machine = ParagonXPS(
        eng,
        MachineConfig(
            mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=4,
            stripe_size=64 * KB, network=NetworkConfig(), disk=DiskConfig(),
        ),
    )
    tracer = Tracer()
    pfs = PFS(eng, machine, tracer=tracer)
    sizes = [48 * KB] * 64 + [3000, 7777, 65 * KB + 123] * 8

    def proc():
        cli = pfs.client(0)
        h = yield from cli.gopen(
            "/pfs/wb", group=[0], mode=AccessMode.M_ASYNC
        )
        yield from cli.write_batch(h, sizes)
        yield from cli.write_batch(h, sizes)
        yield from cli.close(h)

    eng.process(proc(), name="rank-0")
    eng.run()
    trace = tracer.finish()
    out = io.StringIO()
    write_sddf(trace, out)
    return out.getvalue(), eng.now, pfs.app_batches_submitted


def test_write_behind_drain_mid_batch(monkeypatch):
    fast_sddf, fast_wall, batches = _wb_world(True, monkeypatch)
    stepped_sddf, stepped_wall, _ = _wb_world(False, monkeypatch)
    assert batches > 0  # the batch path engaged, not a silent fallback
    assert fast_sddf == stepped_sddf
    assert fast_wall == stepped_wall

"""Fault-injection determinism guarantees.

Three invariants, each across both DES kernels and both data paths:

1. A run with *no* fault engine and a run with an engine carrying an
   empty plan produce byte-identical SDDF traces — attaching the
   machinery costs nothing observable.
2. A seeded fault plan produces byte-identical SDDF traces under every
   kernel/datapath combination — faults do not break the simulator's
   cross-implementation equivalence.
3. The chaos report is a pure function of its seed.
"""

import io

import pytest

from repro.apps import run_escat, scaled_escat_problem
from repro.faults import FaultPlan
from repro.pablo.sddf import write_sddf

SEED = 1996

COMBOS = [("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")]


def _sddf(monkeypatch, fast_core, fast_datapath, fault_plan):
    monkeypatch.setenv("REPRO_FAST_CORE", fast_core)
    monkeypatch.setenv("REPRO_FAST_DATAPATH", fast_datapath)
    problem = scaled_escat_problem()
    result = run_escat("A", problem, seed=SEED, fault_plan=fault_plan)
    out = io.StringIO()
    write_sddf(result.trace, out)
    return out.getvalue()


@pytest.mark.parametrize("core,datapath", COMBOS)
def test_zero_fault_plan_is_invisible(monkeypatch, core, datapath):
    bare = _sddf(monkeypatch, core, datapath, None)
    engined = _sddf(monkeypatch, core, datapath, FaultPlan())
    assert bare == engined


def test_seeded_plan_identical_across_kernels_and_datapaths(monkeypatch):
    plan = FaultPlan.seeded(seed=7, horizon=66.0, n_io_nodes=16)
    traces = {
        (core, dp): _sddf(monkeypatch, core, dp, plan)
        for core, dp in COMBOS
    }
    reference = traces[("1", "1")]
    assert all(t == reference for t in traces.values())
    # And it is genuinely a different run from the healthy one.
    assert reference != _sddf(monkeypatch, "1", "1", None)


def test_chaos_report_is_reproducible():
    from repro.experiments.chaos import chaos_report

    first = chaos_report(seed=11, classes=["slowdown"])
    second = chaos_report(seed=11, classes=["slowdown"])
    assert first.format() == second.format()
    assert first.baseline_ranking == second.baseline_ranking


def test_chaos_report_breaks_retries_down_by_class():
    from repro.experiments.chaos import ChaosCell, ChaosReport, ChaosRow

    report = ChaosReport(
        app="escat", seed=1, baseline_ranking=("A",),
        baseline_walls={"A": 10.0}, baseline_quantiles={"A": ()},
    )
    report.rows.append(ChaosRow(
        fault_class="crash", plan_lines="(plan)",
        cells=[ChaosCell(
            version="A", completed=True, wall_time=12.0,
            fault_summary={
                "retries": 3,
                "retries_by_class": {"crash": 2, "network": 1},
                "backoff_s": 0.35,
                "messages_lost": 1,
                "wb_lost": 0,
            },
        )],
    ))
    text = report.format()
    assert "retries 3 (crash 2, network 1) backoff 0.350s" in text

"""Tests for the achieved-transfer-rate analysis."""

import pytest

from repro.apps import run_escat, scaled_escat_problem
from repro.core.bandwidth import (
    phase_bandwidth,
    render_rates,
    transfer_rates,
)
from repro.errors import AnalysisError
from repro.pablo import IOEvent, IOOp, Trace
from repro.units import KB


def ev(op=IOOp.READ, nbytes=100, duration=0.01, start=0.0, mode="M_UNIX",
       phase="p"):
    return IOEvent(node=0, op=op, path="/f", start=start,
                   duration=duration, nbytes=nbytes, offset=0,
                   mode=mode, phase=phase)


def test_transfer_rates_grouping():
    trace = Trace([
        ev(nbytes=100, duration=0.01),            # small M_UNIX read
        ev(nbytes=100, duration=0.01, start=1.0),
        ev(nbytes=128 * KB, duration=0.01, start=2.0, mode="M_RECORD"),
    ])
    cells = transfer_rates(trace)
    assert len(cells) == 2
    by_key = {(c.mode, c.size_class): c for c in cells}
    small = by_key[("M_UNIX", "small (<2K)")]
    assert small.requests == 2 and small.bytes == 200
    large = by_key[("M_RECORD", "large (>=64K)")]
    assert large.rate > 100 * small.rate


def test_transfer_rates_ignore_metadata_ops():
    trace = Trace([ev(op=IOOp.OPEN, nbytes=0), ev(op=IOOp.SEEK, nbytes=0)])
    assert transfer_rates(trace) == []


def test_phase_bandwidth():
    trace = Trace([
        ev(op=IOOp.WRITE, nbytes=1000, start=0.0, duration=1.0, phase="a"),
        ev(op=IOOp.WRITE, nbytes=1000, start=9.0, duration=1.0, phase="a"),
        ev(op=IOOp.READ, nbytes=500, start=20.0, duration=0.5, phase="b"),
    ])
    bw = phase_bandwidth(trace)
    assert bw["a"]["write_bw"] == pytest.approx(200.0)  # 2000B / 10s
    assert bw["a"]["read_bw"] == 0.0
    assert bw["b"]["read_bw"] == pytest.approx(1000.0)


def test_render_rates_output():
    trace = Trace([ev(nbytes=128 * KB, mode="M_RECORD")])
    text = render_rates(transfer_rates(trace))
    assert "M_RECORD" in text and "MB/s" in text


def test_render_rates_empty_rejected():
    with pytest.raises(AnalysisError):
        render_rates([])


def test_paper_claim_stripe_multiples_fast_small_slow():
    """Section 6's transfer-rate asymmetry from a real run."""
    result = run_escat(
        "B", scaled_escat_problem(n_nodes=8, records_per_channel=16)
    )
    cells = {
        (c.mode, c.size_class, c.op): c
        for c in transfer_rates(result.trace)
    }
    record_reads = cells[("M_RECORD", "large (>=64K)", IOOp.READ)]
    small_writes = cells[("M_UNIX", "small (<2K)", IOOp.WRITE)]
    # Stripe-multiple M_RECORD reads achieve orders of magnitude more
    # application-visible bandwidth than small shared-file writes.
    assert record_reads.rate > 50 * small_writes.rate

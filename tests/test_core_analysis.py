"""Unit tests for the characterization analyses."""

import numpy as np
import pytest

from repro.core import (
    burstiness,
    classify_phases,
    compare_versions,
    concurrency_stats,
    evaluate_principles,
    execution_fraction,
    io_time_breakdown,
    operation_timeline,
    phase_profile,
    render_breakdown_table,
    render_comparison,
    request_classes,
    request_size_cdf,
)
from repro.core.cdf import cdf_from_sizes
from repro.core.evolution import VersionResult
from repro.core.phases import CHECKPOINT, COMPULSORY, DATA_STAGING
from repro.core.report import render_fraction_table, render_mode_table
from repro.errors import AnalysisError
from repro.pablo import IOEvent, IOOp, Trace, TraceMeta
from repro.units import KB


def ev(node=0, op=IOOp.READ, path="/f", start=0.0, duration=0.01,
       nbytes=100, offset=0, mode="M_UNIX", phase=""):
    return IOEvent(node=node, op=op, path=path, start=start,
                   duration=duration, nbytes=nbytes, offset=offset,
                   mode=mode, phase=phase)


# ---------------------------------------------------------------- CDF
def test_cdf_basic_fractions():
    cdf = cdf_from_sizes([100] * 97 + [128 * KB] * 3)
    assert cdf.fraction_of_requests_at_or_below(100) == pytest.approx(0.97)
    # The 3 large requests carry almost all the data.
    assert cdf.fraction_of_data_at_or_below(100) < 0.05
    assert cdf.fraction_of_data_at_or_below(128 * KB) == pytest.approx(1.0)


def test_cdf_monotone_and_normalized():
    rng = np.random.default_rng(7)
    sizes = rng.integers(1, 10**6, size=500)
    cdf = cdf_from_sizes(sizes)
    assert (np.diff(cdf.count_cdf) >= 0).all()
    assert (np.diff(cdf.data_cdf) >= 0).all()
    assert cdf.count_cdf[-1] == pytest.approx(1.0)
    assert cdf.data_cdf[-1] == pytest.approx(1.0)


def test_cdf_percentile_size():
    cdf = cdf_from_sizes([10, 20, 30, 40])
    assert cdf.percentile_size(0.5) == 20
    assert cdf.percentile_size(1.0) == 40


def test_cdf_below_smallest_is_zero():
    cdf = cdf_from_sizes([100, 200])
    assert cdf.fraction_of_requests_at_or_below(50) == 0.0


def test_cdf_empty_rejected():
    with pytest.raises(AnalysisError):
        cdf_from_sizes([])


def test_request_size_cdf_from_trace():
    trace = Trace([ev(op=IOOp.READ, nbytes=10), ev(op=IOOp.WRITE, nbytes=99)])
    cdf = request_size_cdf(trace, IOOp.READ)
    assert cdf.n_requests == 1
    with pytest.raises(AnalysisError):
        request_size_cdf(trace, IOOp.SEEK)


# ---------------------------------------------------------------- breakdown
def test_breakdown_percentages_sum_to_100():
    trace = Trace([
        ev(op=IOOp.OPEN, duration=0.5),
        ev(op=IOOp.READ, duration=0.3),
        ev(op=IOOp.WRITE, duration=0.2),
    ])
    b = io_time_breakdown(trace)
    assert b.percent(IOOp.OPEN) == pytest.approx(50.0)
    assert sum(b.percent(op) for op in b.totals) == pytest.approx(100.0)
    assert b.dominant_op() == IOOp.OPEN


def test_breakdown_empty_dominant_raises():
    with pytest.raises(AnalysisError):
        io_time_breakdown(Trace([])).dominant_op()


def test_execution_fraction_table3_semantics():
    # 2 nodes, 10 s wall -> 20 node-seconds of execution.
    trace = Trace(
        [ev(op=IOOp.READ, duration=1.0), ev(op=IOOp.WRITE, duration=1.0)],
        TraceMeta(nodes=2),
    )
    rows = execution_fraction(trace, wall_time=10.0)
    assert rows["read"] == pytest.approx(5.0)
    assert rows["All I/O"] == pytest.approx(10.0)


def test_execution_fraction_needs_nodes():
    trace = Trace([ev()])
    with pytest.raises(AnalysisError):
        execution_fraction(trace, wall_time=10.0)
    rows = execution_fraction(trace, wall_time=10.0, n_nodes=4)
    assert "All I/O" in rows


# ---------------------------------------------------------------- temporal
def test_timeline_extraction():
    trace = Trace([
        ev(op=IOOp.READ, start=1.0, nbytes=10),
        ev(op=IOOp.READ, start=5.0, nbytes=20),
        ev(op=IOOp.WRITE, start=2.0, nbytes=99),
    ])
    ts = operation_timeline(trace, IOOp.READ)
    assert ts.times.tolist() == [1.0, 5.0]
    assert ts.values.tolist() == [10.0, 20.0]
    assert ts.span == pytest.approx(4.0)


def test_timeline_duration_attribute():
    trace = Trace([ev(op=IOOp.SEEK, duration=0.7, nbytes=0)])
    ts = operation_timeline(trace, IOOp.SEEK, attribute="duration")
    assert ts.values.tolist() == [0.7]


def test_timeline_bursts():
    times = [0.0, 0.1, 0.2, 10.0, 10.1, 20.0]
    trace = Trace([ev(op=IOOp.WRITE, start=t) for t in times])
    ts = operation_timeline(trace, IOOp.WRITE)
    bursts = ts.active_intervals(gap=5.0)
    assert len(bursts) == 3
    assert bursts[0] == (0.0, 0.2)


def test_timeline_within():
    trace = Trace([ev(start=1.0), ev(start=3.0), ev(start=9.0)])
    ts = operation_timeline(trace, IOOp.READ)
    assert len(ts.within(0.0, 5.0)) == 2


# ---------------------------------------------------------------- classify
def test_request_classes_small_large():
    trace = Trace(
        [ev(op=IOOp.READ, nbytes=100)] * 97
        + [ev(op=IOOp.READ, nbytes=128 * KB)] * 3
    )
    stats = request_classes(trace, IOOp.READ)
    assert stats.small_count == 97
    assert stats.large_count == 3
    assert stats.small_count_fraction == pytest.approx(0.97)
    assert stats.large_data_fraction > 0.97


def test_request_classes_empty():
    stats = request_classes(Trace([]), IOOp.READ)
    assert stats.total_count == 0
    assert stats.small_count_fraction == 0.0


def test_concurrency_serial_vs_parallel():
    serial = Trace([
        ev(node=0, start=0.0, duration=1.0),
        ev(node=0, start=1.0, duration=1.0),
    ])
    s = concurrency_stats(serial)
    assert s.peak_concurrency == 1
    assert s.coordinator_share == 1.0

    parallel = Trace([
        ev(node=i, start=0.0, duration=1.0) for i in range(4)
    ])
    p = concurrency_stats(parallel)
    assert p.peak_concurrency == 4
    assert p.active_nodes == 4
    assert p.coordinator_share == pytest.approx(0.25)


def test_burstiness_uniform_vs_bursty():
    uniform = Trace([ev(op=IOOp.WRITE, start=float(i)) for i in range(100)])
    bursty = Trace(
        [ev(op=IOOp.WRITE, start=0.001 * i) for i in range(50)]
        + [ev(op=IOOp.WRITE, start=99.0 + 0.001 * i) for i in range(50)]
    )
    assert burstiness(bursty, IOOp.WRITE) > burstiness(uniform, IOOp.WRITE)


# ---------------------------------------------------------------- phases
def test_phase_profile_aggregates():
    trace = Trace([
        ev(phase="init", op=IOOp.READ, start=0.0, nbytes=10, node=0),
        ev(phase="init", op=IOOp.READ, start=1.0, nbytes=10, node=1),
        ev(phase="out", op=IOOp.WRITE, start=9.0, nbytes=50, node=0),
    ])
    profiles = phase_profile(trace)
    assert profiles["init"].reads == 2
    assert profiles["init"].concurrency == 2
    assert profiles["out"].bytes_written == 50


def test_classify_compulsory_and_staging():
    # Staging: write phase re-read later with similar volume.
    trace = Trace(
        [ev(phase="input", op=IOOp.READ, start=1.0, nbytes=100)]
        + [ev(phase="stage-w", op=IOOp.WRITE, start=30.0 + i, nbytes=1000)
           for i in range(5)]
        + [ev(phase="stage-r", op=IOOp.READ, start=70.0 + i, nbytes=1000)
           for i in range(5)]
        + [ev(phase="results", op=IOOp.WRITE, start=99.0, nbytes=100)]
    )
    classes = classify_phases(trace, wall_time=100.0)
    assert classes["input"] == COMPULSORY
    assert classes["stage-w"] == DATA_STAGING
    assert classes["stage-r"] == DATA_STAGING
    assert classes["results"] == COMPULSORY


def test_classify_checkpoint_bursts():
    events = []
    for burst in range(5):
        t = 20.0 + burst * 15.0
        events += [
            ev(phase="ckpt", op=IOOp.WRITE, start=t + 0.01 * i, nbytes=1000)
            for i in range(10)
        ]
    classes = classify_phases(Trace(events), wall_time=100.0)
    assert classes["ckpt"] == CHECKPOINT


# ---------------------------------------------------------------- evolution
def _mk_result(version, wall, op_durations, nodes=4):
    events = []
    t = 0.0
    for op, dur, n in op_durations:
        for _ in range(n):
            events.append(ev(op=op, duration=dur, start=t,
                             nbytes=100 if op != IOOp.SEEK else 0))
            t += 0.01
    return VersionResult(
        version=version,
        trace=Trace(events, TraceMeta(nodes=nodes)),
        wall_time=wall,
        n_nodes=nodes,
    )


def test_compare_versions_reduction_and_dominants():
    a = _mk_result("A", 100.0, [(IOOp.OPEN, 1.0, 5), (IOOp.READ, 0.5, 4)])
    c = _mk_result("C", 80.0, [(IOOp.WRITE, 0.2, 5)])
    cmp = compare_versions([a, c])
    assert cmp.exec_time_reduction == pytest.approx(0.2)
    assert cmp.dominant_ops["A"] == IOOp.OPEN
    assert cmp.dominant_ops["C"] == IOOp.WRITE
    assert cmp.io_time_change(IOOp.OPEN, "A", "C") == pytest.approx(-5.0)


def test_compare_versions_needs_two():
    a = _mk_result("A", 100.0, [(IOOp.READ, 1.0, 1)])
    with pytest.raises(AnalysisError):
        compare_versions([a])


def test_compare_versions_duplicate_labels_rejected():
    a = _mk_result("A", 100.0, [(IOOp.READ, 1.0, 1)])
    b = _mk_result("A", 90.0, [(IOOp.READ, 1.0, 1)])
    with pytest.raises(AnalysisError):
        compare_versions([a, b])


# ---------------------------------------------------------------- principles
def test_principles_sequential_small_reads_aggregatable():
    events = [
        ev(op=IOOp.READ, offset=i * 100, nbytes=100, start=float(i))
        for i in range(10)
    ]
    report = evaluate_principles(Trace(events))
    # 9 of 10 reads follow their predecessor contiguously.
    assert report.aggregatable_read_fraction == pytest.approx(0.9)
    assert report.prefetchable_read_fraction == pytest.approx(0.9)


def test_principles_reread_detection():
    events = [
        ev(op=IOOp.READ, node=n, offset=0, nbytes=2048, start=float(n))
        for n in range(4)
    ]
    report = evaluate_principles(Trace(events))
    assert report.reread_byte_fraction == pytest.approx(0.75)


def test_principles_serialized_fraction():
    events = [
        ev(op=IOOp.READ, mode="M_UNIX"),
        ev(op=IOOp.WRITE, mode="M_ASYNC"),
    ]
    report = evaluate_principles(Trace(events))
    assert report.serialized_data_fraction == pytest.approx(0.5)
    assert report.modes_exercised == 2


# ---------------------------------------------------------------- report
def test_render_breakdown_table_contains_rows():
    trace = Trace([ev(op=IOOp.OPEN, duration=1.0), ev(op=IOOp.READ, duration=1.0)])
    table = render_breakdown_table({"A": io_time_breakdown(trace)}, title="T")
    assert "open" in table and "read" in table and "T" in table
    assert "50.00" in table


def test_render_breakdown_with_reference():
    trace = Trace([ev(op=IOOp.OPEN, duration=1.0)])
    table = render_breakdown_table(
        {"A": io_time_breakdown(trace)},
        reference={"A": {"open": 53.68}},
    )
    assert "53.68" in table


def test_render_fraction_table():
    rows = {"A": {"read": 1.27, "All I/O": 2.97}}
    text = render_fraction_table(rows, title="Table 3")
    assert "All I/O" in text and "2.97" in text


def test_render_mode_table():
    text = render_mode_table(
        rows=[["Phase One", "All Nodes", "M_UNIX"]],
        headers=["", "I/O Activity", "I/O Mode"],
        title="Table 1",
    )
    assert "M_UNIX" in text and "Phase One" in text


def test_render_comparison_narrative():
    a = _mk_result("A", 100.0, [(IOOp.OPEN, 1.0, 2)])
    c = _mk_result("C", 80.0, [(IOOp.WRITE, 0.5, 2)])
    text = render_comparison(compare_versions([a, c]), title="ESCAT")
    assert "20.0%" in text and "ESCAT" in text

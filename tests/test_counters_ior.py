"""Tests for the Darshan-style counters and the IOR-style benchmark."""

import pytest

from repro.errors import AnalysisError, WorkloadError
from repro.machine import MachineConfig
from repro.pablo import IOEvent, IOOp, Trace, derive_counters, render_counters
from repro.pfs import AccessMode
from repro.units import KB, MB
from repro.workloads import IORConfig, run_ior

SMALL_MACHINE = MachineConfig(
    mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=4
)


def ev(node=0, op=IOOp.READ, path="/f", start=0.0, duration=0.01,
       nbytes=100, offset=0):
    return IOEvent(node=node, op=op, path=path, start=start,
                   duration=duration, nbytes=nbytes, offset=offset)


# ---------------------------------------------------------------- counters
def test_counters_basic_totals():
    trace = Trace([
        ev(op=IOOp.OPEN, nbytes=0, start=0.0),
        ev(op=IOOp.READ, nbytes=100, offset=0, start=1.0),
        ev(op=IOOp.READ, nbytes=100, offset=100, start=2.0),
        ev(op=IOOp.WRITE, nbytes=50, offset=200, start=3.0),
        ev(op=IOOp.CLOSE, nbytes=0, start=4.0),
    ])
    counters = derive_counters(trace)
    fc = counters["/f"]
    assert fc.opens == 1 and fc.reads == 2 and fc.writes == 1
    assert fc.bytes_read == 200 and fc.bytes_written == 50
    assert fc.read_time == pytest.approx(0.02)
    assert fc.meta_time == pytest.approx(0.02)  # open + close


def test_counters_sequentiality():
    trace = Trace([
        ev(op=IOOp.READ, offset=0, nbytes=100, start=0.0),
        ev(op=IOOp.READ, offset=100, nbytes=100, start=1.0),   # consecutive
        ev(op=IOOp.READ, offset=500, nbytes=100, start=2.0),   # sequential
        ev(op=IOOp.READ, offset=50, nbytes=100, start=3.0),    # backwards
    ])
    fc = derive_counters(trace)["/f"]
    assert fc.consec_reads == 1
    assert fc.seq_reads == 2  # consecutive counts as sequential too


def test_counters_histograms_and_common_sizes():
    trace = Trace(
        [ev(op=IOOp.READ, nbytes=40, offset=i * 40, start=float(i))
         for i in range(5)]
        + [ev(op=IOOp.READ, nbytes=128 * KB, offset=MB + i * 128 * KB,
              start=10.0 + i) for i in range(2)]
    )
    fc = derive_counters(trace)["/f"]
    assert fc.read_size_histogram["0-100"] == 5
    assert fc.read_size_histogram["100K-1M"] == 2
    assert fc.common_access_sizes[0] == (40, 5)
    assert fc.common_access_sizes[1] == (128 * KB, 2)


def test_counters_alignment():
    trace = Trace([
        ev(op=IOOp.WRITE, offset=0, nbytes=100),            # aligned
        ev(op=IOOp.WRITE, offset=64 * KB, nbytes=100),      # aligned
        ev(op=IOOp.WRITE, offset=100, nbytes=100),          # not
    ])
    fc = derive_counters(trace, alignment=64 * KB)["/f"]
    assert fc.unaligned_accesses == 1


def test_counters_shared_detection():
    trace = Trace([
        ev(node=0, op=IOOp.READ), ev(node=1, op=IOOp.READ),
    ])
    fc = derive_counters(trace)["/f"]
    assert fc.shared and len(fc.ranks) == 2


def test_counters_per_node_streams():
    """Interleaved nodes don't pollute each other's sequentiality."""
    trace = Trace([
        ev(node=0, op=IOOp.READ, offset=0, nbytes=100, start=0.0),
        ev(node=1, op=IOOp.READ, offset=5000, nbytes=100, start=0.5),
        ev(node=0, op=IOOp.READ, offset=100, nbytes=100, start=1.0),
        ev(node=1, op=IOOp.READ, offset=5100, nbytes=100, start=1.5),
    ])
    fc = derive_counters(trace)["/f"]
    assert fc.consec_reads == 2


def test_counters_invalid_alignment():
    with pytest.raises(AnalysisError):
        derive_counters(Trace([]), alignment=0)


def test_render_counters_output():
    trace = Trace([
        ev(op=IOOp.OPEN, nbytes=0),
        ev(op=IOOp.READ, nbytes=100, offset=0),
    ])
    text = render_counters(derive_counters(trace))
    assert "file: /f" in text
    assert "1 reads" in text
    assert "common access sizes: 100B x1" in text


def test_counters_from_real_run():
    from repro.apps import run_prism, scaled_prism_problem

    result = run_prism(
        "C", scaled_prism_problem(n_nodes=4, steps=10, checkpoint_every=5)
    )
    counters = derive_counters(result.trace)
    rst = counters["/pfs/prism/prism.rst"]
    assert rst.shared
    assert rst.bytes_read > 0
    # The restart body records appear among the common access sizes.
    assert any(size == 155584 for size, _ in rst.common_access_sizes)


# -------------------------------------------------------------------- IOR
def test_ior_write_read_bandwidths_positive():
    result = run_ior(
        IORConfig(n_nodes=4, block_size=512 * KB, transfer_size=64 * KB),
        machine_config=SMALL_MACHINE,
    )
    assert result.write_bandwidth > 0
    assert result.read_bandwidth > 0
    assert "MB/s" in result.summary()


def test_ior_larger_transfers_not_slower_for_unix_writes():
    def bw(transfer):
        return run_ior(
            IORConfig(
                n_nodes=4, block_size=512 * KB, transfer_size=transfer,
                mode=AccessMode.M_UNIX, do_read=False,
            ),
            machine_config=SMALL_MACHINE,
        ).write_bandwidth

    assert bw(64 * KB) > 2 * bw(8 * KB)


def test_ior_file_per_process():
    result = run_ior(
        IORConfig(
            n_nodes=4, block_size=256 * KB, transfer_size=64 * KB,
            file_per_process=True,
        ),
        machine_config=SMALL_MACHINE,
    )
    assert result.write_bandwidth > 0


def test_ior_read_only_prepopulates():
    result = run_ior(
        IORConfig(
            n_nodes=4, block_size=256 * KB, transfer_size=64 * KB,
            do_write=False, do_read=True,
        ),
        machine_config=SMALL_MACHINE,
    )
    assert result.read_bandwidth > 0
    assert result.write_bandwidth == 0.0


def test_ior_segments_multiply_volume():
    cfg = IORConfig(n_nodes=2, block_size=128 * KB, transfer_size=64 * KB,
                    segments=3)
    assert cfg.aggregate_bytes == 2 * 128 * KB * 3


def test_ior_config_validation():
    with pytest.raises(WorkloadError):
        IORConfig(block_size=10, transfer_size=100).validate()
    with pytest.raises(WorkloadError):
        IORConfig(block_size=100, transfer_size=33).validate()
    with pytest.raises(WorkloadError):
        IORConfig(do_write=False, do_read=False).validate()
    with pytest.raises(WorkloadError):
        IORConfig(mode=AccessMode.M_GLOBAL).validate()
    with pytest.raises(WorkloadError):
        IORConfig(mode=AccessMode.M_RECORD, file_per_process=True).validate()

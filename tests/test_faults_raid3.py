"""RAID-3 degraded-mode math and array fault-state transitions.

A single member failure puts the array in parity-reconstruct mode:
every access pays the degraded penalties (RAID-3 is byte-interleaved,
so reconstruction engages the whole array regardless of direction).  A
rebuild restores full-service pricing — and the *original* config
object, so identity-keyed caches re-warm.  A second failure while
degraded is modeled data loss.
"""

import pytest

from repro.errors import DataLossError, MachineError
from repro.machine import DiskConfig
from repro.machine.disk import RAID3Array
from repro.units import KB


def _fresh(**overrides):
    return RAID3Array(DiskConfig(**overrides))


def test_degraded_random_access_pays_configured_penalties():
    cfg = DiskConfig()
    disk = _fresh()
    disk.fail_disk()
    got = disk.service_time(0, 64 * KB)
    expected = (
        cfg.request_overhead
        + cfg.positioning * cfg.degraded_position_penalty
        + 64 * KB / (cfg.transfer_rate / cfg.degraded_transfer_penalty)
    )
    assert got == pytest.approx(expected, rel=1e-12)


def test_degraded_sequential_access_still_cheaper_than_random():
    disk = _fresh()
    disk.fail_disk()
    t_random = disk.service_time(0, 64 * KB)
    t_seq = disk.service_time(64 * KB, 64 * KB)
    assert t_seq < t_random
    cfg = disk.config
    expected_seq = (
        cfg.request_overhead + cfg.sequential_overhead + 64 * KB
        / cfg.transfer_rate
    )
    assert t_seq == pytest.approx(expected_seq, rel=1e-12)


def test_degraded_mode_slows_reads_and_writes_alike():
    healthy = _fresh()
    degraded = _fresh()
    degraded.fail_disk()
    for rmw in (False, True):
        t_h = healthy.service_time(0, 16 * KB, rmw=rmw)
        t_d = degraded.service_time(0, 16 * KB, rmw=rmw)
        assert t_d > t_h
        healthy.reset_position()
        degraded.reset_position()


def test_plan_batch_matches_service_time_while_degraded():
    pieces = [(0, 64 * KB, False), (64 * KB, 64 * KB, False),
              (512 * KB, 4 * KB, True)]
    planner = _fresh()
    planner.fail_disk()
    stepper = _fresh()
    stepper.fail_disk()
    planned = planner.plan_batch(pieces)
    stepped = [stepper.service_time(o, n, rmw=r) for o, n, r in pieces]
    assert planned == stepped


def test_rebuild_restores_base_config_object_identity():
    disk = _fresh()
    base = disk.config
    disk.fail_disk()
    assert disk.config is not base
    assert disk.degraded
    disk.rebuild_complete()
    assert disk.config is base  # identity-keyed caches re-warm
    assert not disk.degraded
    assert disk.rebuilds == 1


def test_second_failure_while_degraded_is_data_loss():
    disk = _fresh()
    disk.fail_disk()
    with pytest.raises(DataLossError):
        disk.fail_disk()


def test_rebuild_of_healthy_array_rejected():
    with pytest.raises(MachineError):
        _fresh().rebuild_complete()


def test_slowdown_scales_service_and_clears_cleanly():
    disk = _fresh()
    base = disk.config
    t_healthy = disk.service_time(0, 64 * KB)
    disk.reset_position()
    disk.set_slowdown(10.0)
    t_slow = disk.service_time(0, 64 * KB)
    assert t_slow == pytest.approx(t_healthy * 10.0, rel=1e-12)
    disk.clear_slowdown()
    assert disk.config is base
    disk.reset_position()
    assert disk.service_time(0, 64 * KB) == pytest.approx(t_healthy)


def test_slowdown_composes_with_degraded_mode():
    disk = _fresh()
    disk.fail_disk()
    t_degraded = disk.service_time(0, 64 * KB)
    disk.reset_position()
    disk.set_slowdown(4.0)
    t_both = disk.service_time(0, 64 * KB)
    assert t_both == pytest.approx(t_degraded * 4.0, rel=1e-12)
    disk.clear_slowdown()
    assert disk.degraded  # slow-down end must not heal the array


def test_invalid_fault_parameters_rejected():
    with pytest.raises(MachineError):
        _fresh().set_slowdown(0.5)
    with pytest.raises(MachineError):
        DiskConfig(degraded_transfer_penalty=0.9).validate()
    with pytest.raises(MachineError):
        DiskConfig(degraded_position_penalty=0.0).validate()

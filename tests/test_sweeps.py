"""Tests for the machine-configuration sweep experiment."""

from repro.experiments import clear_cache, run_experiment
from repro.experiments.sweeps import machine_sweep


def test_machine_sweep_fast():
    clear_cache()
    results, text = machine_sweep(fast=True)
    assert "capture" in results
    # I/O-node scaling: more servers never hurt the replayed I/O time.
    assert results["16 I/O nodes"] <= results["4 I/O nodes"]
    assert results["4 I/O nodes"] <= results["1 I/O nodes"]
    # Tiny stripes fragment the 128 KB records and cost more.
    assert results["64K stripe"] <= results["16K stripe"]
    assert "Machine-configuration sweep" in text


def test_sweep_registered():
    text = run_experiment("sweep", fast=True)
    assert "I/O node-seconds" in text

"""Span stacking under contention: edge-case equivalence battery.

The contended-span batching work lets the datapath stack a new
``FastSpan`` onto a server that already has an active plan chain
instead of falling back to event-stepped pieces.  Every scenario here
is chosen to stress one seam of that machinery — write-behind drains
landing mid-span, revocation of a multi-span chain, fault plans and
degraded RAID-3 arrays underneath stacked spans — and each asserts
the same oracle as ``test_datapath_equivalence``: byte-identical SDDF
output and identical simulated wall clock versus the legacy per-piece
path.  Where the scenario exists to prove stacking *happened*, the
datapath counters are asserted too, so these cells cannot silently
degrade into fallback-only runs.
"""

import io


from repro.faults import FaultPlan
from repro.faults.plan import DiskFailure, SlowDown
from repro.machine import DiskConfig, MachineConfig, NetworkConfig, ParagonXPS
from repro.pablo import Tracer
from repro.pablo.sddf import write_sddf
from repro.pfs import PFS
from repro.pfs.modes import AccessMode
from repro.sim import Engine
from repro.units import KB

N_RANKS = 8

#: Ragged sizes force multi-piece spans that cross stripe boundaries.
SIZES = (48 * KB, 7777, 65 * KB + 123, 64 * KB)


def _run_contended(
    fast_datapath,
    monkeypatch,
    mode=AccessMode.M_UNIX,
    sizes=SIZES,
    write_behind_slots=256,
    fault_plan=None,
    n_io_nodes=2,
):
    """Eight ranks hammer two I/O nodes; returns (sddf, wall, pfs)."""
    monkeypatch.setenv("REPRO_FAST_DATAPATH", "1" if fast_datapath else "0")
    eng = Engine()
    config = MachineConfig(
        mesh_cols=4,
        mesh_rows=4,
        n_compute_nodes=16,
        n_io_nodes=n_io_nodes,
        stripe_size=64 * KB,
        network=NetworkConfig(),
        disk=DiskConfig(),
    )
    machine = ParagonXPS(eng, config)
    tracer = Tracer()
    pfs = PFS(
        eng, machine, tracer=tracer,
        write_behind_slots=write_behind_slots,
    )
    assert (pfs.datapath is not None) == fast_datapath
    if fault_plan is not None:
        from repro.faults import FaultEngine

        FaultEngine(eng, machine, pfs, fault_plan)

    group = list(range(N_RANKS))
    gopen_mode = None if mode is AccessMode.M_UNIX else mode

    def rank_proc(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen("/pfs/stack", group=group, mode=gopen_mode)
        for s in sizes:
            yield from cli.write(h, s)
        yield from cli.close(h)
        h = yield from cli.gopen("/pfs/stack", group=group, mode=gopen_mode)
        for s in sizes:
            yield from cli.read(h, s)
        yield from cli.close(h)

    for rank in group:
        eng.process(rank_proc(rank), name=f"rank-{rank}")
    eng.run()
    out = io.StringIO()
    write_sddf(tracer.finish(), out)
    return out.getvalue(), eng.now, pfs


def _assert_equivalent(fast, legacy):
    fast_sddf, fast_wall, _ = fast
    legacy_sddf, legacy_wall, _ = legacy
    assert fast_sddf == legacy_sddf
    assert fast_wall == legacy_wall


def test_contended_workload_stacks_and_matches_legacy(monkeypatch):
    fast = _run_contended(True, monkeypatch)
    legacy = _run_contended(False, monkeypatch)
    _assert_equivalent(fast, legacy)
    dp = fast[2].datapath
    # The point of the PR: contention no longer forces fallback.
    assert dp.spans_stacked > 0
    assert dp.span_stacked_bytes > 0
    assert dp.fallback_pieces == 0


def test_write_behind_drains_mid_span(monkeypatch):
    # M_ASYNC acks into write-behind; starved slots force drains while
    # later spans are still being planned and stacked on the same
    # servers, and drain completions settle chains mid-flight.
    kwargs = dict(mode=AccessMode.M_ASYNC, write_behind_slots=4)
    fast = _run_contended(True, monkeypatch, **kwargs)
    legacy = _run_contended(False, monkeypatch, **kwargs)
    _assert_equivalent(fast, legacy)
    servers = fast[2].servers
    assert sum(s.wb_drained for s in servers) > 0
    assert fast[2].datapath.spans_stacked > 0


def test_mid_chain_revocation_reconstitutes_exactly(monkeypatch):
    # M_RECORD mixes plannable reads with write-behind traffic whose
    # event-stepped entries settle (revoke) active multi-span chains.
    kwargs = dict(mode=AccessMode.M_RECORD, sizes=(48 * KB,) * 4)
    fast = _run_contended(True, monkeypatch, **kwargs)
    legacy = _run_contended(False, monkeypatch, **kwargs)
    _assert_equivalent(fast, legacy)
    dp = fast[2].datapath
    assert dp.revocations > 0
    assert dp.spans_stacked > 0


def test_fault_plan_under_stacked_spans(monkeypatch):
    # A mid-run slowdown plus a rebuilding disk failure, underneath the
    # same contended workload: fault entries land inside chain windows.
    plan = FaultPlan(events=(
        SlowDown(time=2.0, duration=3.0, io_node=0, factor=6.0),
        DiskFailure(time=4.0, io_node=1, rebuild_after=5.0),
    ))
    fast = _run_contended(True, monkeypatch, fault_plan=plan)
    legacy = _run_contended(False, monkeypatch, fault_plan=plan)
    _assert_equivalent(fast, legacy)


def test_degraded_raid3_under_stacking(monkeypatch):
    # Disk 0 fails at t=0 and never rebuilds: every span planned on it
    # prices degraded-mode RAID-3 service times end to end.
    plan = FaultPlan(events=(
        DiskFailure(time=0.0, io_node=0, rebuild_after=None),
    ))
    fast = _run_contended(True, monkeypatch, fault_plan=plan)
    legacy = _run_contended(False, monkeypatch, fault_plan=plan)
    _assert_equivalent(fast, legacy)
    assert fast[2].datapath.spans_stacked > 0


def test_single_piece_contention_exercises_early_planning(monkeypatch):
    # Sub-stripe requests are single-piece (k == 1) spans, the
    # specialized early-planning path; contention stacks them deep.
    sizes = (16 * KB,) * 4
    fast = _run_contended(True, monkeypatch, sizes=sizes)
    legacy = _run_contended(False, monkeypatch, sizes=sizes)
    _assert_equivalent(fast, legacy)
    assert fast[2].datapath.spans_stacked > 0


def test_adaptive_guard_disables_after_revocation_storm(monkeypatch):
    from repro.pfs import datapath as dpmod

    _, _, pfs = _run_contended(True, monkeypatch, sizes=(4 * KB,))
    dp = pfs.datapath
    server = pfs.servers[0]
    assert not server.span_disabled
    # A run of successes keeps planning enabled...
    for _ in range(dpmod._SPAN_WINDOW):
        dp._span_outcome(server, 0)
    assert not server.span_disabled
    # ...but once revocations dominate the sliding window, the guard
    # turns the server's planning off for the rest of the run.
    for _ in range(dpmod._SPAN_DISABLE_REVOKED):
        dp._span_outcome(server, 1)
    assert server.span_disabled

"""Tests for the section-6 cross-application comparison."""

import pytest

from repro.apps import (
    run_escat,
    run_prism,
    scaled_escat_problem,
    scaled_prism_problem,
)
from repro.core import profile_trace, section6_report
from repro.errors import AnalysisError
from repro.pablo import Trace


@pytest.fixture(scope="module")
def report():
    escat = scaled_escat_problem(n_nodes=8, records_per_channel=16)
    prism = scaled_prism_problem(n_nodes=8, steps=10, checkpoint_every=5)
    return section6_report(
        run_escat("A", escat).trace,
        run_escat("C", escat).trace,
        run_prism("A", prism).trace,
        run_prism("C", prism).trace,
    )


def test_initial_versions_share_characteristics(report):
    shared = report.shared_initial_characteristics()
    assert any("standard UNIX" in s for s in shared)
    assert any("serializing default mode" in s for s in shared)
    assert any("small in every initial version" in s for s in shared)


def test_initial_small_reads_dominate(report):
    for profile in report.initial.values():
        assert profile.small_read_fraction > 0.9
        assert profile.modes_used == ["M_UNIX"]
        assert profile.serialized_data_fraction == 1.0


def test_escat_initial_is_node_zero_coordinated(report):
    # Phases two through four funnel through node zero in ESCAT A.
    assert report.initial["ESCAT"].node_zero_coordinated


def test_optimized_versions_adopt_new_modes(report):
    effects = report.optimization_effects()
    assert any("ESCAT: adopted" in s and "M_ASYNC" in s for s in effects)
    assert any("PRISM: adopted" in s and "M_GLOBAL" in s for s in effects)
    for profile in report.optimized.values():
        assert len(profile.modes_used) > 1


def test_escat_optimized_large_reads_carry_data(report):
    assert report.optimized["ESCAT"].large_read_data_fraction > 0.85
    assert not report.optimized["ESCAT"].node_zero_coordinated


def test_render_contains_table(report):
    text = report.render()
    assert "Section 6" in text
    assert "ESCAT initial" in text and "PRISM optimized" in text


def test_profile_empty_trace_rejected():
    with pytest.raises(AnalysisError):
        profile_trace(Trace([]), "X", "A")

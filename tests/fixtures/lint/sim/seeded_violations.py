"""Deliberately nondeterministic module for `repro lint` fixture tests.

Lives under a directory named ``sim/`` so the path-based scoping rules
treat it as sim code.  Every construct below must keep producing a
finding — the test suite pins the exact (line-agnostic) code set.
"""

import os
import random
import time


def hash_order_iteration(items):
    chosen = {x for x in items if x}
    out = []
    for item in chosen:  # DET101
        out.append(item)
    return out


def ambient_entropy():
    jitter = random.random()  # DET102
    stamp = time.time()  # DET102
    return jitter, stamp


def id_tiebreak(events):
    return sorted(events, key=id)  # DET103


def midrun_flag():
    return os.environ.get("REPRO_FAST_CORE", "1")  # DET104


def hot_loop(registry, events):
    for event in events:
        registry.counter("sim.events").inc()  # HOT201
    return len(events)


def unjustified(items):
    # repro: allow(DET101)
    for item in set(items):  # SUP901 (no justification), DET101 unsuppressed
        yield item


def stale_suppression(n):
    # repro: allow(DET103): nothing here actually orders by id
    return n + 1  # SUP902 (suppresses nothing)

"""Tests for resource monitoring and the PFS congestion view."""

import pytest

from repro.core.congestion import PFSCongestionMonitor
from repro.errors import SimulationError
from repro.sim import Engine, QueueLog, Resource, PriorityResource, watch
from repro.units import KB

from tests.conftest import run_procs


# ---------------------------------------------------------------- QueueLog
def test_watch_records_state_changes():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = watch(res)

    def worker(eng, res):
        with res.request() as req:
            yield req
            yield eng.timeout(1.0)

    for _ in range(3):
        eng.process(worker(eng, res))
    eng.run()
    assert len(log) > 3
    assert log.peak_queue == 2  # two waiters behind the first holder
    assert 0 < log.time_weighted_mean_queue() < 2
    assert log.busy_fraction() == pytest.approx(1.0)  # always held 0..3s


def test_watch_priority_resource():
    eng = Engine()
    res = PriorityResource(eng, capacity=1)
    log = watch(res)
    holder = res.request(priority=0)
    res.request(priority=1)
    res.request(priority=2)
    assert log.peak_queue == 2
    res.release(holder)
    assert log.queued[-1] == 1


def test_watch_idle_resource_busy_fraction_zero():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = watch(res)

    def idler(eng):
        yield eng.timeout(5.0)

    eng.process(idler(eng))
    eng.run()
    # Only the initial sample: nothing to weight.
    assert log.busy_fraction() == 0.0
    assert log.peak_queue == 0


def test_watch_rejects_unmonitorable():
    with pytest.raises(SimulationError):
        watch(object())  # type: ignore[arg-type]


def test_queue_log_series_shapes():
    log = QueueLog()
    log.sample(0.0, 0, 0)
    log.sample(1.0, 2, 1)
    t, q, u = log.series()
    assert t.tolist() == [0.0, 1.0]
    assert q.tolist() == [0, 2]
    assert u.tolist() == [0, 1]


# ---------------------------------------------------------------- PFS view
def test_congestion_monitor_sees_open_storm(small_world):
    eng, machine, pfs, tracer = small_world
    monitor = PFSCongestionMonitor(pfs)

    def opener(rank):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/storm")
        yield from cli.close(h)

    run_procs(eng, *(opener(r) for r in range(12)))
    stats = {s.name: s for s in monitor.stats()}
    # Eleven openers queued behind the first at the metadata node.
    assert stats["metadata"].peak_queue >= 10
    assert stats["metadata"].busy_fraction > 0.5


def test_congestion_monitor_token_queue(small_world):
    eng, machine, pfs, tracer = small_world
    from repro.sim import Barrier

    barrier = Barrier(eng, parties=8)

    def setup():
        cli = pfs.client(15)
        h = yield from cli.open("/pfs/shared")
        yield from cli.write(h, 64 * KB)
        yield from cli.close(h)

    run_procs(eng, setup())
    monitor = PFSCongestionMonitor(pfs)
    token_log = monitor.watch_token("/pfs/shared")

    def reader(rank):
        cli = pfs.client(rank)
        h = yield from cli.open("/pfs/shared")
        yield barrier.wait()
        for _ in range(5):
            yield from cli.read(h, 1 * KB)
        yield from cli.close(h)

    run_procs(eng, *(reader(r) for r in range(8)))
    # The token queue visibly backed up (the "serialization" the
    # paper inferred, observed directly).
    assert token_log.peak_queue >= 4


def test_congestion_render(small_world):
    eng, machine, pfs, tracer = small_world
    monitor = PFSCongestionMonitor(pfs)

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/x")
        yield from cli.write(h, 4 * KB)
        yield from cli.close(h)

    run_procs(eng, proc())
    text = monitor.render(top=3)
    assert "metadata" in text or "disk[" in text
    assert "peak=" in text

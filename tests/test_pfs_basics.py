"""Unit tests for PFS building blocks: striping, extents, cache, modes."""

import pytest

from repro.errors import AccessModeError, PFSError
from repro.pfs import (
    AccessMode,
    BlockCache,
    ExtentMap,
    StripeLayout,
    parse_mode,
    semantics,
)
from repro.units import KB


# ---------------------------------------------------------------- striping
def test_stripe_round_robin_io_nodes():
    layout = StripeLayout(stripe_size=64 * KB, n_io_nodes=4)
    assert layout.io_node_of(0) == 0
    assert layout.io_node_of(64 * KB) == 1
    assert layout.io_node_of(4 * 64 * KB) == 0


def test_stripe_pieces_within_one_stripe():
    layout = StripeLayout(stripe_size=64 * KB, n_io_nodes=4)
    pieces = layout.pieces(100, 1000)
    assert len(pieces) == 1
    assert pieces[0].io_node == 0
    assert pieces[0].nbytes == 1000
    assert pieces[0].file_offset == 100


def test_stripe_pieces_span_stripes():
    layout = StripeLayout(stripe_size=64, n_io_nodes=4)
    pieces = layout.pieces(32, 96)
    assert [(p.io_node, p.nbytes) for p in pieces] == [(0, 32), (1, 64)]
    assert sum(p.nbytes for p in pieces) == 96


def test_stripe_pieces_cover_request_exactly():
    layout = StripeLayout(stripe_size=64, n_io_nodes=3)
    pieces = layout.pieces(10, 500)
    pos = 10
    for p in pieces:
        assert p.file_offset == pos
        pos += p.nbytes
    assert pos == 510


def test_stripe_disk_offsets_contiguous_per_disk():
    """Consecutive stripes on the same disk occupy contiguous disk
    addresses (so streaming writes look sequential to the disk)."""
    layout = StripeLayout(stripe_size=64, n_io_nodes=4, disk_base=1000)
    # Stripes 0 and 4 are both on io node 0.
    assert layout.disk_offset_of(0) == 1000
    assert layout.disk_offset_of(4 * 64) == 1000 + 64


def test_stripe_alignment_check():
    layout = StripeLayout(stripe_size=64 * KB, n_io_nodes=16)
    assert layout.is_stripe_aligned(0, 128 * KB)
    assert not layout.is_stripe_aligned(1, 128 * KB)
    assert not layout.is_stripe_aligned(0, 100)


def test_stripe_zero_length_request():
    layout = StripeLayout(stripe_size=64, n_io_nodes=4)
    assert layout.pieces(10, 0) == []


def test_stripe_invalid_args():
    with pytest.raises(PFSError):
        StripeLayout(stripe_size=0, n_io_nodes=4)
    with pytest.raises(PFSError):
        StripeLayout(stripe_size=64, n_io_nodes=0)
    layout = StripeLayout(stripe_size=64, n_io_nodes=4)
    with pytest.raises(PFSError):
        layout.pieces(-1, 10)
    with pytest.raises(PFSError):
        layout.pieces(0, -10)


# ---------------------------------------------------------------- extents
def test_extent_map_simple_write_read():
    m = ExtentMap()
    m.write(0, 100, token=7)
    exts = m.read(0, 100)
    assert len(exts) == 1
    assert (exts[0].start, exts[0].end, exts[0].token) == (0, 100, 7)


def test_extent_map_overwrite_splits():
    m = ExtentMap()
    m.write(0, 100, token=1)
    m.write(25, 75, token=2)
    exts = m.read(0, 100)
    assert [(e.start, e.end, e.token) for e in exts] == [
        (0, 25, 1), (25, 75, 2), (75, 100, 1),
    ]


def test_extent_map_later_write_wins():
    m = ExtentMap()
    m.write(0, 50, token=1)
    m.write(0, 50, token=2)
    assert [e.token for e in m.read(0, 50)] == [2]


def test_extent_map_read_clips():
    m = ExtentMap()
    m.write(100, 200, token=5)
    exts = m.read(150, 300)
    assert [(e.start, e.end) for e in exts] == [(150, 200)]


def test_extent_map_holes_absent():
    m = ExtentMap()
    m.write(0, 10, token=1)
    m.write(20, 30, token=2)
    assert m.covered_bytes(0, 30) == 20
    assert [e.token for e in m.read(0, 30)] == [1, 2]


def test_extent_map_high_water():
    m = ExtentMap()
    assert m.high_water == 0
    m.write(100, 200, token=1)
    assert m.high_water == 200


def test_extent_map_zero_length_write_ignored():
    m = ExtentMap()
    m.write(50, 50, token=1)
    assert len(m) == 0


def test_extent_map_invalid_ranges():
    m = ExtentMap()
    with pytest.raises(PFSError):
        m.write(-1, 10, token=1)
    with pytest.raises(PFSError):
        m.write(10, 5, token=1)
    with pytest.raises(PFSError):
        m.read(10, 5)


def test_extent_map_many_adjacent_writes():
    m = ExtentMap()
    for i in range(100):
        m.write(i * 10, (i + 1) * 10, token=i)
    assert m.covered_bytes(0, 1000) == 1000
    exts = m.read(0, 1000)
    assert len(exts) == 100
    assert [e.token for e in exts] == list(range(100))


# ---------------------------------------------------------------- cache
def test_cache_hit_after_insert():
    cache = BlockCache(capacity_blocks=4)
    key = (1, 0)
    assert not cache.lookup(key)
    cache.insert(key)
    assert cache.lookup(key)
    assert cache.hits == 1 and cache.misses == 1


def test_cache_lru_eviction():
    cache = BlockCache(capacity_blocks=2)
    cache.insert((1, 0))
    cache.insert((1, 1))
    cache.lookup((1, 0))  # refresh 0
    cache.insert((1, 2))  # evicts 1
    assert cache.lookup((1, 0))
    assert not cache.lookup((1, 1))
    assert cache.evictions == 1


def test_cache_dirty_tracking():
    cache = BlockCache(capacity_blocks=4)
    cache.insert((1, 0), dirty=True)
    assert cache.dirty_count == 1
    cache.mark_clean((1, 0))
    assert cache.dirty_count == 0


def test_cache_invalidate():
    cache = BlockCache(capacity_blocks=4)
    cache.insert((1, 0))
    cache.invalidate((1, 0))
    assert not cache.lookup((1, 0))


def test_cache_invalid_capacity():
    with pytest.raises(PFSError):
        BlockCache(capacity_blocks=0)


# ---------------------------------------------------------------- modes
def test_mode_semantics_table():
    assert semantics(AccessMode.M_UNIX).atomic_serialized
    assert semantics(AccessMode.M_UNIX).private_pointer
    assert semantics(AccessMode.M_RECORD).node_ordered
    assert semantics(AccessMode.M_RECORD).fixed_size
    assert not semantics(AccessMode.M_ASYNC).atomic_serialized
    assert semantics(AccessMode.M_GLOBAL).aggregated
    assert not semantics(AccessMode.M_GLOBAL).private_pointer
    assert semantics(AccessMode.M_SYNC).node_ordered
    assert not semantics(AccessMode.M_SYNC).fixed_size
    assert not semantics(AccessMode.M_LOG).private_pointer


def test_parse_mode_case_insensitive():
    assert parse_mode("m_unix") == AccessMode.M_UNIX
    assert parse_mode("M_RECORD") == AccessMode.M_RECORD


def test_parse_mode_unknown():
    with pytest.raises(AccessModeError):
        parse_mode("M_BOGUS")

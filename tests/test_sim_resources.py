"""Unit tests for resources, stores, and synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Barrier,
    Engine,
    FilterStore,
    Gate,
    Lock,
    PriorityResource,
    Resource,
    Semaphore,
    Store,
    TurnTaker,
)


# ---------------------------------------------------------------- Resource
def test_resource_serializes_at_capacity_one():
    eng = Engine()
    res = Resource(eng, capacity=1)
    spans = []

    def worker(eng, res, name):
        with res.request() as req:
            yield req
            start = eng.now
            yield eng.timeout(2.0)
            spans.append((name, start, eng.now))

    for name in ("a", "b", "c"):
        eng.process(worker(eng, res, name))
    eng.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0), ("c", 4.0, 6.0)]


def test_resource_capacity_two_overlaps():
    eng = Engine()
    res = Resource(eng, capacity=2)
    starts = []

    def worker(eng, res):
        with res.request() as req:
            yield req
            starts.append(eng.now)
            yield eng.timeout(1.0)

    for _ in range(4):
        eng.process(worker(eng, res))
    eng.run()
    assert starts == [0.0, 0.0, 1.0, 1.0]


def test_resource_invalid_capacity():
    eng = Engine()
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_resource_release_pending_request_withdraws():
    eng = Engine()
    res = Resource(eng, capacity=1)
    holder = res.request()
    assert holder.triggered
    pending = res.request()
    assert not pending.triggered
    res.release(pending)  # withdraw from queue
    res.release(holder)
    third = res.request()
    assert third.triggered
    assert pending not in res.users


def test_resource_count_property():
    eng = Engine()
    res = Resource(eng, capacity=3)
    reqs = [res.request() for _ in range(5)]
    assert res.count == 3
    res.release(reqs[0])
    assert res.count == 3  # a queued request was promoted
    assert reqs[3].triggered


def test_priority_resource_orders_by_priority():
    eng = Engine()
    res = PriorityResource(eng, capacity=1)
    order = []

    def worker(eng, res, rank):
        # All request at t=0 while the resource is held.
        req = res.request(priority=rank)
        yield req
        order.append(rank)
        yield eng.timeout(1.0)
        res.release(req)

    def seed(eng, res):
        req = res.request(priority=-1)
        yield req
        yield eng.timeout(1.0)
        res.release(req)

    eng.process(seed(eng, res))
    for rank in (3, 0, 2, 1):
        eng.process(worker(eng, res, rank))
    eng.run()
    assert order == [0, 1, 2, 3]


def test_priority_resource_fifo_within_priority():
    eng = Engine()
    res = PriorityResource(eng, capacity=1)
    seed = res.request(priority=0)
    first = res.request(priority=5)
    second = res.request(priority=5)
    res.release(seed)
    assert first.triggered and not second.triggered


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    eng = Engine()
    store = Store(eng)
    got = []

    def producer(eng, store):
        for i in range(3):
            yield store.put(i)
            yield eng.timeout(1.0)

    def consumer(eng, store):
        for _ in range(3):
            got.append((yield store.get()))

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    times = []

    def consumer(eng, store):
        item = yield store.get()
        times.append((item, eng.now))

    def producer(eng, store):
        yield eng.timeout(5.0)
        yield store.put("x")

    eng.process(consumer(eng, store))
    eng.process(producer(eng, store))
    eng.run()
    assert times == [("x", 5.0)]


def test_store_capacity_blocks_put():
    eng = Engine()
    store = Store(eng, capacity=1)
    log = []

    def producer(eng, store):
        yield store.put("a")
        log.append(("put-a", eng.now))
        yield store.put("b")
        log.append(("put-b", eng.now))

    def consumer(eng, store):
        yield eng.timeout(3.0)
        yield store.get()

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    assert log == [("put-a", 0.0), ("put-b", 3.0)]


def test_store_invalid_capacity():
    eng = Engine()
    with pytest.raises(SimulationError):
        Store(eng, capacity=0)


def test_filter_store_selects_matching():
    eng = Engine()
    store = FilterStore(eng)
    got = []

    def consumer(eng, store):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(eng, store):
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    eng.process(consumer(eng, store))
    eng.process(producer(eng, store))
    eng.run()
    assert got == [4]
    assert store.items == [1, 3]


def test_filter_store_blocked_getter_does_not_starve():
    eng = Engine()
    store = FilterStore(eng)
    got = []

    def want(eng, store, pred, tag):
        item = yield store.get(pred)
        got.append((tag, item))

    eng.process(want(eng, store, lambda x: x == "never", "blocked"))
    eng.process(want(eng, store, lambda x: x == "yes", "served"))

    def producer(eng, store):
        yield store.put("yes")

    eng.process(producer(eng, store))
    eng.run()
    assert got == [("served", "yes")]


# ---------------------------------------------------------------- Sync
def test_barrier_releases_all_at_last_arrival():
    eng = Engine()
    bar = Barrier(eng, parties=3)
    release_times = []

    def party(eng, bar, delay):
        yield eng.timeout(delay)
        yield bar.wait()
        release_times.append(eng.now)

    for d in (1.0, 2.0, 7.0):
        eng.process(party(eng, bar, d))
    eng.run()
    assert release_times == [7.0, 7.0, 7.0]


def test_barrier_reusable_across_cycles():
    eng = Engine()
    bar = Barrier(eng, parties=2)
    cycles = []

    def party(eng, bar):
        for _ in range(3):
            cycle = yield bar.wait()
            cycles.append(cycle)
            yield eng.timeout(1.0)

    eng.process(party(eng, bar))
    eng.process(party(eng, bar))
    eng.run()
    assert sorted(cycles) == [0, 0, 1, 1, 2, 2]
    assert bar.cycle == 3


def test_barrier_single_party_is_noop():
    eng = Engine()
    bar = Barrier(eng, parties=1)
    done = []

    def party(eng, bar):
        yield bar.wait()
        done.append(eng.now)

    eng.process(party(eng, bar))
    eng.run()
    assert done == [0.0]


def test_barrier_invalid_parties():
    eng = Engine()
    with pytest.raises(SimulationError):
        Barrier(eng, parties=0)


def test_turn_taker_enforces_rank_order():
    eng = Engine()
    tt = TurnTaker(eng, parties=4)
    order = []

    def node(eng, tt, rank, arrival):
        yield eng.timeout(arrival)
        yield tt.wait_turn(rank)
        order.append(rank)
        yield eng.timeout(0.5)
        tt.done(rank)

    # Arrive in scrambled order; service must be 0,1,2,3.
    arrivals = {0: 3.0, 1: 1.0, 2: 0.0, 3: 2.0}
    for rank, arrival in arrivals.items():
        eng.process(node(eng, tt, rank, arrival))
    eng.run()
    assert order == [0, 1, 2, 3]


def test_turn_taker_cycles_rounds():
    eng = Engine()
    tt = TurnTaker(eng, parties=2)
    rounds = []

    def node(eng, tt, rank):
        for _ in range(2):
            rnd = yield tt.wait_turn(rank)
            rounds.append((rank, rnd))
            tt.done(rank)
            yield eng.timeout(0.1)

    eng.process(node(eng, tt, 0))
    eng.process(node(eng, tt, 1))
    eng.run()
    assert (0, 0) in rounds and (1, 0) in rounds
    assert (0, 1) in rounds and (1, 1) in rounds


def test_turn_taker_done_out_of_turn_raises():
    eng = Engine()
    tt = TurnTaker(eng, parties=2)
    with pytest.raises(SimulationError):
        tt.done(1)


def test_turn_taker_invalid_rank():
    eng = Engine()
    tt = TurnTaker(eng, parties=2)
    with pytest.raises(SimulationError):
        tt.wait_turn(5)


def test_lock_mutual_exclusion():
    eng = Engine()
    lock = Lock(eng)
    spans = []

    def worker(eng, lock, name):
        yield lock.acquire()
        start = eng.now
        yield eng.timeout(1.0)
        spans.append((name, start, eng.now))
        lock.release()

    for name in ("a", "b"):
        eng.process(worker(eng, lock, name))
    eng.run()
    assert spans == [("a", 0.0, 1.0), ("b", 1.0, 2.0)]
    assert not lock.locked


def test_lock_release_unheld_raises():
    eng = Engine()
    lock = Lock(eng)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_queue_length():
    eng = Engine()
    lock = Lock(eng)

    def holder(eng, lock):
        yield lock.acquire()
        yield eng.timeout(10.0)
        lock.release()

    def waiter(eng, lock):
        yield lock.acquire()
        lock.release()

    eng.process(holder(eng, lock))
    for _ in range(3):
        eng.process(waiter(eng, lock))
    eng.run(until=5.0)
    assert lock.queue_length == 3


def test_semaphore_counts():
    eng = Engine()
    sem = Semaphore(eng, value=2)
    starts = []

    def worker(eng, sem):
        yield sem.acquire()
        starts.append(eng.now)
        yield eng.timeout(1.0)
        sem.release()

    for _ in range(4):
        eng.process(worker(eng, sem))
    eng.run()
    assert starts == [0.0, 0.0, 1.0, 1.0]


def test_semaphore_invalid_value():
    eng = Engine()
    with pytest.raises(SimulationError):
        Semaphore(eng, value=-1)


def test_gate_blocks_then_broadcasts():
    eng = Engine()
    gate = Gate(eng)
    got = []

    def waiter(eng, gate, tag):
        value = yield gate.wait()
        got.append((tag, value, eng.now))

    def opener(eng, gate):
        yield eng.timeout(4.0)
        gate.open("data")

    eng.process(waiter(eng, gate, "w1"))
    eng.process(waiter(eng, gate, "w2"))
    eng.process(opener(eng, gate))
    eng.run()
    assert got == [("w1", "data", 4.0), ("w2", "data", 4.0)]


def test_gate_late_waiter_passes_immediately():
    eng = Engine()
    gate = Gate(eng)
    gate.open(99)
    got = []

    def waiter(eng, gate):
        got.append((yield gate.wait()))

    eng.process(waiter(eng, gate))
    eng.run()
    assert got == [99]


def test_gate_double_open_raises():
    eng = Engine()
    gate = Gate(eng)
    gate.open()
    with pytest.raises(SimulationError):
        gate.open()

"""Integration tests for the PRISM workload model (miniature scale)."""

import pytest

from repro.apps import run_prism, scaled_prism_problem
from repro.apps.prism.app import PHASE1, PHASE2, PHASE3
from repro.core import operation_timeline
from repro.errors import WorkloadError
from repro.pablo import IOOp


@pytest.fixture(scope="module")
def runs():
    problem = scaled_prism_problem(n_nodes=8, steps=20, checkpoint_every=5)
    return {v: run_prism(v, problem) for v in ("A", "B", "C")}, problem


def test_all_versions_complete(runs):
    results, _ = runs
    for v, r in results.items():
        assert r.wall_time > 0 and len(r.trace) > 0
        assert r.application == "PRISM"


def test_three_phases_present(runs):
    results, _ = runs
    for r in results.values():
        phases = {e.phase for e in r.trace.events}
        assert {PHASE1, PHASE2, PHASE3} <= phases


def test_phase2_is_node_zero_everywhere(runs):
    results, _ = runs
    for r in results.values():
        writers = {
            e.node for e in r.trace.by_phase(PHASE2).by_op(IOOp.WRITE).events
        }
        assert writers == {0}


def test_phase3_participation_by_version(runs):
    results, _ = runs
    a_writers = {
        e.node
        for e in results["A"].trace.by_phase(PHASE3).by_op(IOOp.WRITE).events
    }
    assert a_writers == {0}
    for v in ("B", "C"):
        writers = {
            e.node
            for e in results[v].trace.by_phase(PHASE3).by_op(IOOp.WRITE).events
        }
        assert len(writers) == 8
        modes = {
            e.mode
            for e in results[v].trace.by_phase(PHASE3).by_op(IOOp.WRITE).events
        }
        assert modes == {"M_ASYNC"}


def test_input_modes_by_version(runs):
    results, _ = runs
    rea = lambda r: {
        e.mode for e in r.trace.by_op(IOOp.READ).events
        if e.path.endswith("prism.rea")
    }
    assert rea(results["A"]) == {"M_UNIX"}
    assert rea(results["B"]) == {"M_GLOBAL"}
    assert rea(results["C"]) == {"M_GLOBAL"}
    rst = lambda r: {
        e.mode for e in r.trace.by_op(IOOp.READ).events
        if e.path.endswith("prism.rst")
    }
    assert rst(results["B"]) == {"M_GLOBAL", "M_RECORD"}
    assert rst(results["C"]) == {"M_ASYNC"}


def test_connectivity_binary_reduces_reads(runs):
    results, problem = runs
    cnn_reads = lambda r: [
        e for e in r.trace.by_op(IOOp.READ).events
        if e.path.endswith("prism.cnn")
    ]
    a_count = len(cnn_reads(results["A"])) // 8  # per node
    c_count = len(cnn_reads(results["C"])) // 8
    assert a_count == problem.cnn_text_reads
    assert c_count == problem.cnn_binary_reads
    assert c_count < a_count


def test_checkpoint_count(runs):
    results, problem = runs
    for r in results.values():
        chk = r.trace.select(
            lambda e: e.op == IOOp.WRITE and "chk" in e.path
        )
        ts = operation_timeline(chk, IOOp.WRITE)
        bursts = ts.active_intervals(gap=r.wall_time * 0.05)
        assert len(bursts) == problem.n_checkpoints


def test_measurement_written_every_step(runs):
    results, problem = runs
    for r in results.values():
        mea = [
            e for e in r.trace.by_op(IOOp.WRITE).events
            if e.path.endswith("prism.mea")
        ]
        assert len(mea) == problem.steps


def test_iomode_only_in_b(runs):
    results, _ = runs
    assert len(results["A"].trace.by_op(IOOp.IOMODE)) == 0
    assert len(results["B"].trace.by_op(IOOp.IOMODE)) > 0
    assert len(results["C"].trace.by_op(IOOp.IOMODE)) == 0  # gopen sets it


def test_gopen_only_in_c(runs):
    results, _ = runs
    assert len(results["A"].trace.by_op(IOOp.GOPEN)) == 0
    assert len(results["B"].trace.by_op(IOOp.GOPEN)) == 0
    assert len(results["C"].trace.by_op(IOOp.GOPEN)) > 0


def test_unbuffered_header_reads_slower_in_c(runs):
    """Version C's tiny restart-header reads cost more per byte."""
    results, _ = runs
    def header_read_time(r):
        evs = [
            e for e in r.trace.by_op(IOOp.READ).events
            if e.path.endswith("prism.rst") and e.nbytes <= 40
        ]
        return sum(e.duration for e in evs) / max(1, len(evs))

    assert header_read_time(results["C"]) > header_read_time(results["B"])


def test_restart_body_fully_read(runs):
    results, problem = runs
    for r in results.values():
        body_bytes = sum(
            e.nbytes for e in r.trace.by_op(IOOp.READ).events
            if e.path.endswith("prism.rst")
            and e.nbytes == problem.rst_body_read_size
        )
        assert body_bytes == problem.rst_body_bytes


def test_deterministic(runs):
    problem = scaled_prism_problem(n_nodes=4, steps=10, checkpoint_every=5)
    r1 = run_prism("C", problem, seed=3)
    r2 = run_prism("C", problem, seed=3)
    assert r1.wall_time == r2.wall_time
    assert len(r1.trace) == len(r2.trace)


def test_unknown_version_rejected():
    problem = scaled_prism_problem(n_nodes=4)
    with pytest.raises(WorkloadError):
        run_prism("X", problem)

"""Tests for ``repro metrics diff``: per-layer snapshot comparison.

Two canned snapshots (abridged ``repro metrics --json`` documents)
drive :func:`telemetry.snapshot_diff` and :func:`telemetry.render_diff`
without running a simulation, so the delta/percent arithmetic and the
missing-section rules are pinned exactly.  A final test goes through
the CLI with real exported snapshots.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry import TelemetryError

SNAP_A = {
    "sim_seconds": 100.0,
    "wall_seconds": 2.0,
    "engine": {"events": 1000, "timestamps": 800,
               "events_per_timestamp": 1.25},
    "network": {"messages": 400, "bytes_moved": 4096},
    "datapath": {"spans": 50, "spans_stacked": 10, "span_bytes": 3072,
                 "fallback_bytes": 1024, "span_stacked_bytes": 512,
                 "fallback_pieces": 4, "revocations": 1},
    "servers": [
        {"requests_completed": 100, "queue_delay_s": 1.0,
         "service_s": 10.0, "wb_drained": 5, "cache_hits": 30,
         "cache_misses": 10, "cache_evictions": 2, "span_disabled": 0,
         "disk": {"busy_s": 9.0, "position_s": 6.0, "transfer_s": 3.0,
                  "requests": 90}},
        {"requests_completed": 50, "queue_delay_s": 0.5,
         "service_s": 5.0, "wb_drained": 0, "cache_hits": 10,
         "cache_misses": 10, "cache_evictions": 0, "span_disabled": 1,
         "disk": {"busy_s": 4.0, "position_s": 2.5, "transfer_s": 1.5,
                  "requests": 40}},
    ],
}

SNAP_B = {
    "sim_seconds": 50.0,
    "wall_seconds": 1.0,
    "engine": {"events": 600, "timestamps": 500,
               "events_per_timestamp": 1.2},
    "network": {"messages": 200, "bytes_moved": 2048},
    # no "datapath": legacy-datapath run
    "servers": [
        {"requests_completed": 80, "queue_delay_s": 0.25,
         "service_s": 6.0, "wb_drained": 2, "cache_hits": 40,
         "cache_misses": 0, "cache_evictions": 0, "span_disabled": 0,
         "disk": {"busy_s": 5.0, "position_s": 3.0, "transfer_s": 2.0,
                  "requests": 70}},
    ],
}


def _rows(diff, layer):
    for section in diff["layers"]:
        if section["layer"] == layer:
            return {row["metric"]: row for row in section["rows"]}
    return {}


def test_diff_absolute_and_relative_deltas():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    run = _rows(diff, "run")
    assert run["sim_seconds"]["delta"] == pytest.approx(-50.0)
    assert run["sim_seconds"]["pct"] == pytest.approx(-50.0)
    engine = _rows(diff, "engine")
    assert engine["events"]["a"] == 1000
    assert engine["events"]["b"] == 600
    assert engine["events"]["pct"] == pytest.approx(-40.0)


def test_diff_sums_across_servers():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    server = _rows(diff, "server")
    assert server["requests_completed"]["a"] == 150
    assert server["requests_completed"]["b"] == 80
    disk = _rows(diff, "disk")
    assert disk["seek_s"]["a"] == pytest.approx(8.5)
    assert disk["transfer_s"]["delta"] == pytest.approx(-2.5)


def test_diff_rates_in_percentage_points():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    cache = _rows(diff, "cache")
    row = cache["hit_rate_pct"]
    assert row["rate"] is True
    assert row["a"] == pytest.approx(200.0 / 3)  # 40 hits / 60 lookups
    assert row["b"] == pytest.approx(100.0)
    assert row["delta"] == pytest.approx(100.0 / 3)
    assert "pct" not in row  # rates diff in pp, never in percent


def test_diff_one_sided_section_keeps_rows_with_none():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    dp = _rows(diff, "datapath")
    assert dp["spans"]["a"] == 50
    assert dp["spans"]["b"] is None
    assert "delta" not in dp["spans"]
    share = dp["span_byte_share_pct"]
    assert share["a"] == pytest.approx(75.0)  # 3072 / 4096


def test_diff_drops_sections_missing_from_both():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    assert _rows(diff, "faults") == {}  # neither snapshot has faults


def test_render_diff_table():
    diff = telemetry.snapshot_diff(SNAP_A, SNAP_B)
    text = telemetry.render_diff(diff, "before", "after")
    lines = text.splitlines()
    assert "before" in lines[0] and "after" in lines[0]
    by_metric = {line.split()[1]: line for line in lines[1:] if line.split()}
    assert "-50.0%" in by_metric["sim_seconds"]
    assert "+33.3pp" in by_metric["hit_rate_pct"]
    # one-sided rows render dashes, not crashes
    assert by_metric["spans"].rstrip().endswith("-")


def test_load_snapshot_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(TelemetryError):
        telemetry.load_snapshot(str(bad))
    shapeless = tmp_path / "shapeless.json"
    shapeless.write_text(json.dumps({"hello": 1}))
    with pytest.raises(TelemetryError):
        telemetry.load_snapshot(str(shapeless))
    with pytest.raises(TelemetryError):
        telemetry.load_snapshot(str(tmp_path / "missing.json"))


def test_cli_metrics_diff(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(SNAP_A))
    b.write_text(json.dumps(SNAP_B))
    out = tmp_path / "diff.json"
    rc = main(["metrics", "diff", str(a), str(b), "--json", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "sim_seconds" in text and "hit_rate_pct" in text
    doc = json.loads(out.read_text())
    assert any(sec["layer"] == "engine" for sec in doc["layers"])


def test_cli_metrics_diff_requires_two_paths(tmp_path, capsys):
    a = tmp_path / "a.json"
    a.write_text(json.dumps(SNAP_A))
    assert main(["metrics", "diff", str(a)]) == 1
    assert "usage" in capsys.readouterr().err


def test_cli_metrics_still_validates_versions(capsys):
    assert main(["metrics", "escat", "Z", "--fast"]) == 1
    assert "unknown version" in capsys.readouterr().err

"""Unit tests for the Pablo tracing and summary toolkit."""

import io

import pytest

from repro.errors import TraceError
from repro.pablo import (
    IOEvent,
    IOOp,
    Trace,
    TraceMeta,
    Tracer,
    file_lifetime_summaries,
    file_region_summaries,
    filter_events,
    group_by,
    merge_traces,
    read_sddf,
    sort_events,
    time_window_summaries,
    write_sddf,
)
from repro.pablo.sddf import roundtrip


def ev(node=0, op=IOOp.READ, path="/f", start=0.0, duration=0.01,
       nbytes=100, offset=0, mode="M_UNIX", phase="p1"):
    return IOEvent(node=node, op=op, path=path, start=start,
                   duration=duration, nbytes=nbytes, offset=offset,
                   mode=mode, phase=phase)


# ---------------------------------------------------------------- records
def test_event_end():
    e = ev(start=1.0, duration=0.5)
    assert e.end == 1.5


def test_event_validate_rejects_negative():
    with pytest.raises(ValueError):
        ev(duration=-1).validate()
    with pytest.raises(ValueError):
        ev(nbytes=-1).validate()
    with pytest.raises(ValueError):
        ev(node=-1).validate()


# ---------------------------------------------------------------- tracer
def test_tracer_collects_and_finishes():
    tracer = Tracer(TraceMeta(application="APP", nodes=4))
    tracer.record(ev(start=2.0))
    tracer.record(ev(start=1.0))
    trace = tracer.finish()
    assert len(trace) == 2
    # Events sorted by start time.
    assert trace.events[0].start == 1.0
    assert trace.meta.application == "APP"


def test_tracer_pause_resume():
    tracer = Tracer()
    tracer.record(ev())
    tracer.pause()
    tracer.record(ev())
    tracer.resume()
    tracer.record(ev())
    assert tracer.event_count == 2


def test_tracer_extension_called():
    seen = []
    tracer = Tracer()
    tracer.add_extension(lambda e: seen.append(e.op))
    tracer.record(ev(op=IOOp.WRITE))
    assert seen == [IOOp.WRITE]


def test_tracer_extension_must_be_callable():
    tracer = Tracer()
    with pytest.raises(TraceError):
        tracer.add_extension("nope")


# ---------------------------------------------------------------- trace views
def test_trace_selectors():
    trace = Trace([
        ev(op=IOOp.READ, path="/a", phase="p1"),
        ev(op=IOOp.WRITE, path="/b", phase="p2"),
        ev(op=IOOp.SEEK, path="/a", phase="p1", nbytes=0),
    ])
    assert len(trace.by_op(IOOp.READ)) == 1
    assert len(trace.by_path("/a")) == 2
    assert len(trace.by_phase("p1")) == 2
    assert len(trace.data_events()) == 2
    assert trace.paths() == ["/a", "/b"]


def test_trace_totals():
    trace = Trace([
        ev(start=0.0, duration=1.0, nbytes=100),
        ev(start=5.0, duration=2.0, nbytes=200),
    ])
    assert trace.total_io_time == pytest.approx(3.0)
    assert trace.total_bytes == 300
    assert trace.span == pytest.approx(7.0)


def test_trace_numpy_views():
    trace = Trace([ev(start=1.0, nbytes=10, node=3)])
    assert trace.starts().tolist() == [1.0]
    assert trace.sizes().tolist() == [10]
    assert trace.nodes().tolist() == [3]


# ---------------------------------------------------------------- sddf
def test_sddf_roundtrip_preserves_everything():
    meta = TraceMeta(application="ESCAT", version="B", dataset="ethylene",
                     nodes=128, os_release="OSF/1 R1.2",
                     extra={"note": "test"})
    trace = Trace([
        ev(node=5, op=IOOp.WRITE, path="/pfs/quad.ch0", start=1.25,
           duration=0.0625, nbytes=2048, offset=4096, mode="M_ASYNC",
           phase="phase-2"),
        ev(node=0, op=IOOp.GOPEN, path="/pfs/with\ttab", start=0.5,
           duration=0.125, nbytes=0, offset=-1, mode="", phase=""),
    ], meta)
    back = roundtrip(trace)
    assert len(back) == len(trace)
    assert back.meta.application == "ESCAT"
    assert back.meta.nodes == 128
    assert back.meta.extra == {"note": "test"}
    for a, b in zip(trace.events, back.events):
        assert (a.node, a.op, a.path, a.start, a.duration, a.nbytes,
                a.offset, a.mode, a.phase) == (
            b.node, b.op, b.path, b.start, b.duration, b.nbytes,
            b.offset, b.mode, b.phase)


def test_sddf_rejects_bad_magic():
    with pytest.raises(TraceError):
        read_sddf(io.StringIO("not a trace\n"))


def test_sddf_rejects_malformed_record():
    buf = io.StringIO()
    write_sddf(Trace([ev()]), buf)
    text = buf.getvalue().rstrip("\n") + "\textra_column\n"
    with pytest.raises(TraceError):
        read_sddf(io.StringIO(text))


def test_sddf_file_roundtrip(tmp_path):
    path = tmp_path / "trace.sddf"
    trace = Trace([ev()])
    write_sddf(trace, path)
    back = read_sddf(path)
    assert len(back) == 1


# ---------------------------------------------------------------- lifetime
def test_lifetime_summary_counts_and_bytes():
    trace = Trace([
        ev(op=IOOp.OPEN, path="/f", start=0.0, duration=0.1, nbytes=0),
        ev(op=IOOp.READ, path="/f", start=0.2, duration=0.05, nbytes=100),
        ev(op=IOOp.WRITE, path="/f", start=0.3, duration=0.05, nbytes=50),
        ev(op=IOOp.CLOSE, path="/f", start=1.0, duration=0.01, nbytes=0),
    ])
    summaries = file_lifetime_summaries(trace)
    s = summaries["/f"]
    assert s.op(IOOp.READ).count == 1
    assert s.bytes_read == 100
    assert s.bytes_written == 50
    assert s.bytes_accessed == 150
    assert s.total_io_time == pytest.approx(0.21)
    # Open interval: from end of open (0.1) to end of close (1.01).
    assert s.open_node_time == pytest.approx(0.91)


def test_lifetime_multiple_files():
    trace = Trace([
        ev(path="/a", op=IOOp.READ),
        ev(path="/b", op=IOOp.WRITE),
    ])
    summaries = file_lifetime_summaries(trace)
    assert set(summaries) == {"/a", "/b"}


# ---------------------------------------------------------------- windows
def test_time_windows_partition_events():
    trace = Trace([
        ev(start=0.5, op=IOOp.READ, nbytes=10),
        ev(start=1.5, op=IOOp.WRITE, nbytes=20),
        ev(start=5.5, op=IOOp.WRITE, nbytes=30),
    ])
    windows = time_window_summaries(trace, window=1.0)
    assert len(windows) == 6  # covers up to last end
    assert windows[0].op_counts[IOOp.READ] == 1
    assert windows[1].bytes_written == 20
    assert windows[5].bytes_written == 30
    assert windows[3].total_operations == 0  # gap stays visible


def test_time_windows_bandwidth():
    trace = Trace([ev(start=0.0, op=IOOp.READ, nbytes=1000)])
    w = time_window_summaries(trace, window=2.0)[0]
    assert w.read_bandwidth == pytest.approx(500.0)


def test_time_windows_invalid_window():
    from repro.errors import AnalysisError
    with pytest.raises(AnalysisError):
        time_window_summaries(Trace([ev()]), window=0)


def test_time_windows_empty_trace():
    assert time_window_summaries(Trace([]), window=1.0) == []


# ---------------------------------------------------------------- regions
def test_region_summary_attributes_bytes():
    trace = Trace([
        ev(op=IOOp.WRITE, path="/f", offset=0, nbytes=100, node=1),
        ev(op=IOOp.READ, path="/f", offset=50, nbytes=100, node=2),
    ])
    regions = file_region_summaries(trace, "/f", region_size=100)
    assert len(regions) == 2
    assert regions[0].bytes_written == 100
    assert regions[0].bytes_read == 50
    assert regions[1].bytes_read == 50
    assert regions[0].sharing_degree == 2


def test_region_spanning_request_counted_in_each_region():
    trace = Trace([ev(op=IOOp.READ, path="/f", offset=0, nbytes=250)])
    regions = file_region_summaries(trace, "/f", region_size=100)
    assert [r.reads for r in regions] == [1, 1, 1]
    assert sum(r.bytes_read for r in regions) == 250


def test_region_other_files_ignored():
    trace = Trace([ev(op=IOOp.READ, path="/other", offset=0, nbytes=10)])
    assert file_region_summaries(trace, "/f", region_size=100) == []


# ---------------------------------------------------------------- reduction
def test_group_by_node():
    trace = Trace([ev(node=0), ev(node=1), ev(node=0)])
    groups = group_by(trace, lambda e: e.node)
    assert len(groups[0]) == 2
    assert len(groups[1]) == 1


def test_merge_traces_time_ordered():
    t1 = Trace([ev(start=5.0)])
    t2 = Trace([ev(start=1.0)])
    merged = merge_traces([t1, t2])
    assert [e.start for e in merged.events] == [1.0, 5.0]


def test_merge_zero_traces_rejected():
    with pytest.raises(TraceError):
        merge_traces([])


def test_sort_and_filter():
    trace = Trace([ev(duration=0.5), ev(duration=0.1)])
    by_duration = sort_events(trace, key=lambda e: e.duration)
    assert by_duration[0].duration == 0.1
    small = filter_events(trace, lambda e: e.duration < 0.2)
    assert len(small) == 1

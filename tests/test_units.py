"""Tests for units/formatting helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import GB, KB, MB, fmt_bytes, fmt_percent, fmt_seconds


def test_unit_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_fmt_bytes():
    assert fmt_bytes(0) == "0B"
    assert fmt_bytes(40) == "40B"
    assert fmt_bytes(2048) == "2.0KB"
    assert fmt_bytes(128 * KB) == "128.0KB"
    assert fmt_bytes(int(4.8 * GB)) == "4.80GB"
    assert fmt_bytes(3 * MB) == "3.0MB"


def test_fmt_bytes_negative_rejected():
    with pytest.raises(ValueError):
        fmt_bytes(-1)


def test_fmt_seconds():
    assert fmt_seconds(250e-6) == "250.0us"
    assert fmt_seconds(0.0215) == "21.5ms"
    assert fmt_seconds(2.5) == "2.50s"
    assert fmt_seconds(125.0) == "2m05.0s"


def test_fmt_seconds_negative_rejected():
    with pytest.raises(ValueError):
        fmt_seconds(-0.1)


def test_fmt_percent():
    assert fmt_percent(0.5363) == "53.63"
    assert fmt_percent(0.5363, digits=1) == "53.6"


def test_error_hierarchy():
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.PFSError, errors.ReproError)
    assert issubclass(errors.AccessModeError, errors.PFSError)
    assert issubclass(errors.FileNotOpenError, errors.PFSError)
    assert issubclass(errors.MachineError, errors.ReproError)
    assert issubclass(errors.TraceError, errors.ReproError)
    assert issubclass(errors.WorkloadError, errors.ReproError)
    assert issubclass(errors.AnalysisError, errors.ReproError)
    # Control-flow exceptions are deliberately NOT ReproErrors.
    assert not issubclass(errors.StopSimulation, errors.ReproError)


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name

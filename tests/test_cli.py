"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import clear_cache


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out and "figure9" in out


def test_run_command_fast(capsys):
    clear_cache()
    assert main(["run", "table4", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out and "M_GLOBAL" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "tableX"]) == 1
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_trace_command_writes_sddf(tmp_path, capsys):
    clear_cache()
    out_path = tmp_path / "prism-c.sddf"
    assert main(["trace", "prism", "C", str(out_path), "--fast"]) == 0
    from repro.pablo import read_sddf

    trace = read_sddf(out_path)
    assert len(trace) > 0
    assert trace.meta.application == "PRISM"
    assert trace.meta.version == "C"


def test_parser_rejects_bad_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_counters_command(capsys):
    clear_cache()
    assert main(["counters", "escat", "C", "--fast", "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "file:" in out and "common access sizes" in out


def test_suite_command_smoke(capsys):
    assert main(["suite", "--nodes", "4"]) == 0
    out = capsys.readouterr().out
    assert "compulsory-shared-read" in out


def test_rates_command(capsys):
    clear_cache()
    assert main(["rates", "escat", "B", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "M_RECORD" in out and "MB/s" in out


def test_trace_unwritable_output_is_one_line_error(capsys):
    clear_cache()
    assert main(["trace", "escat", "A", "/no/such/dir/out.sddf",
                 "--fast"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "Traceback" not in err


def test_chaos_unreadable_plan_is_one_line_error(capsys):
    assert main(["chaos", "--plan", "/no/such/plan.json"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "Traceback" not in err
    assert "fault plan" in err


def test_chaos_malformed_plan_is_one_line_error(tmp_path, capsys):
    bad = tmp_path / "plan.json"
    bad.write_text('{"events": [{"type": "warp_core_breach"}]}')
    assert main(["chaos", "--plan", str(bad)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")


def test_chaos_command_smoke(capsys):
    assert main(["chaos", "--seed", "2", "--classes", "network",
                 "--app", "escat"]) == 0
    out = capsys.readouterr().out
    assert "chaos report" in out
    assert "fault class: network" in out
    assert "verdict:" in out

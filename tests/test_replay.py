"""Tests for trace-driven replay."""

import pytest

from repro.apps import run_escat, run_prism, scaled_escat_problem, scaled_prism_problem
from repro.core import io_time_breakdown
from repro.errors import TraceError
from repro.machine import MachineConfig
from repro.pablo import IOOp, Trace
from repro.replay import TraceReplayer, replay_trace

SMALL_MACHINE = MachineConfig(
    mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=4
)


@pytest.fixture(scope="module")
def escat_c_trace():
    problem = scaled_escat_problem(n_nodes=8, records_per_channel=16)
    return run_escat("C", problem)


def test_replay_same_config_reproduces_op_mix(escat_c_trace):
    result = replay_trace(
        escat_c_trace.trace, machine_config=SMALL_MACHINE
    )
    orig = io_time_breakdown(escat_c_trace.trace)
    replayed = io_time_breakdown(result.replayed)
    # Same operation counts (plus the final safety closes).
    for op in (IOOp.READ, IOOp.WRITE, IOOp.SEEK, IOOp.GOPEN, IOOp.IOMODE):
        assert replayed.counts.get(op, 0) == orig.counts.get(op, 0), op
    # Same bytes moved.
    assert result.replayed.total_bytes == escat_c_trace.trace.total_bytes


def test_replay_preserves_modes(escat_c_trace):
    result = replay_trace(
        escat_c_trace.trace, machine_config=SMALL_MACHINE
    )
    orig_modes = {
        (e.op, e.mode) for e in escat_c_trace.trace.events
        if e.op in (IOOp.READ, IOOp.WRITE)
    }
    new_modes = {
        (e.op, e.mode) for e in result.replayed.events
        if e.op in (IOOp.READ, IOOp.WRITE)
    }
    assert orig_modes == new_modes


def test_replay_more_io_nodes_speeds_up(escat_c_trace):
    """The point of replay: evaluate a machine change from a trace."""
    slow = replay_trace(
        escat_c_trace.trace,
        machine_config=MachineConfig(
            mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=1
        ),
        think_time_scale=0.0,
    )
    fast = replay_trace(
        escat_c_trace.trace,
        machine_config=MachineConfig(
            mesh_cols=4, mesh_rows=4, n_compute_nodes=16, n_io_nodes=8
        ),
        think_time_scale=0.0,
    )
    assert fast.replayed_io_time < slow.replayed_io_time


def test_replay_think_time_scale_zero_compresses_wall(escat_c_trace):
    preserved = replay_trace(
        escat_c_trace.trace, machine_config=SMALL_MACHINE,
        think_time_scale=1.0,
    )
    compressed = replay_trace(
        escat_c_trace.trace, machine_config=SMALL_MACHINE,
        think_time_scale=0.0,
    )
    # At mini scale I/O dominates the replay, so compression buys a
    # modest but strict improvement.
    assert compressed.wall_time < preserved.wall_time


def test_replay_prism_trace_with_collectives():
    problem = scaled_prism_problem(n_nodes=8, steps=10, checkpoint_every=5)
    original = run_prism("B", problem)
    result = replay_trace(original.trace, machine_config=SMALL_MACHINE)
    orig = io_time_breakdown(original.trace)
    replayed = io_time_breakdown(result.replayed)
    assert replayed.counts[IOOp.IOMODE] == orig.counts[IOOp.IOMODE]
    assert replayed.counts[IOOp.READ] == orig.counts[IOOp.READ]
    # M_GLOBAL and M_RECORD survive the round trip.
    modes = {e.mode for e in result.replayed.by_op(IOOp.READ).events}
    assert "M_GLOBAL" in modes and "M_RECORD" in modes


def test_replay_rejects_too_small_machine(escat_c_trace):
    with pytest.raises(TraceError):
        TraceReplayer(
            escat_c_trace.trace,
            machine_config=MachineConfig(
                mesh_cols=2, mesh_rows=2, n_compute_nodes=4, n_io_nodes=2
            ),
        ).run()


def test_replay_rejects_negative_scale(escat_c_trace):
    with pytest.raises(TraceError):
        TraceReplayer(escat_c_trace.trace, think_time_scale=-1.0)


def test_replay_empty_trace():
    result = replay_trace(Trace([]), machine_config=SMALL_MACHINE)
    assert len(result.replayed) == 0
    assert result.io_time_ratio == float("inf")

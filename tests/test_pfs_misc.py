"""Additional PFS coverage: namespace, positional I/O, collectives,
buffers, and cost-model validation."""

import pytest

from repro.errors import (
    AccessModeError,
    FileNotFoundError_,
    PFSError,
)
from repro.pfs import AccessMode, PFSCostModel
from repro.pfs.buffering import ReadBuffer
from repro.pfs.collective import CollectiveRegistry
from repro.units import KB

from tests.conftest import run_procs


# ---------------------------------------------------------------- namespace
def test_namespace_lookup_missing(small_world):
    eng, machine, pfs, tracer = small_world
    with pytest.raises(FileNotFoundError_):
        pfs.namespace.lookup("/pfs/nothing")


def test_namespace_create_and_unlink(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/scratch")
        yield from cli.write(h, 100)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert pfs.namespace.exists("/pfs/scratch")
    pfs.namespace.unlink("/pfs/scratch")
    assert not pfs.namespace.exists("/pfs/scratch")
    with pytest.raises(FileNotFoundError_):
        pfs.namespace.unlink("/pfs/scratch")


def test_namespace_unlink_open_file_rejected(small_world):
    eng, machine, pfs, tracer = small_world
    handles = {}

    def proc():
        cli = pfs.client(0)
        handles["h"] = yield from cli.open("/pfs/held")

    run_procs(eng, proc())
    with pytest.raises(PFSError):
        pfs.namespace.unlink("/pfs/held")


def test_namespace_distinct_disk_bases(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        for name in ("a", "b", "c"):
            h = yield from cli.open(f"/pfs/{name}")
            yield from cli.close(h)

    run_procs(eng, proc())
    bases = {
        pfs.namespace.lookup(f"/pfs/{n}").layout.disk_base
        for n in ("a", "b", "c")
    }
    assert len(bases) == 3


# ---------------------------------------------------------------- positional
def test_pread_pwrite_roundtrip(small_world):
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/pos")
        token = yield from cli.pwrite(h, 10 * KB, 4 * KB)
        # The pointer is untouched by positional I/O.
        assert h.offset == 0
        extents = yield from cli.pread(h, 10 * KB, 4 * KB)
        got["tokens"] = (token, [e.token for e in extents])
        yield from cli.close(h)

    run_procs(eng, proc())
    token, read_back = got["tokens"]
    assert read_back == [token]


def test_positional_io_rejected_in_coordination_modes(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def node(rank):
        cli = pfs.client(rank)
        h = yield from cli.gopen(
            "/pfs/rec", group=range(2), mode=AccessMode.M_RECORD
        )
        try:
            yield from cli.pwrite(h, 0, 64 * KB)
        except AccessModeError:
            caught.append(rank)
        yield from cli.close(h)

    run_procs(eng, node(0), node(1))
    assert sorted(caught) == [0, 1]


def test_pwrite_invalid_args(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/pos")
        with pytest.raises(PFSError):
            yield from cli.pwrite(h, -1, 100)
        with pytest.raises(PFSError):
            yield from cli.pread(h, 0, -100)
        yield from cli.close(h)

    run_procs(eng, proc())


# ---------------------------------------------------------------- collectives
def test_collective_registry_matches_by_sequence(small_world):
    eng, machine, pfs, tracer = small_world
    reg = CollectiveRegistry(eng)
    leader0, call0 = reg.join("t", rank=0, parties=2)
    assert not leader0
    leader1, call1 = reg.join("t", rank=1, parties=2)
    assert leader1 and call1 is call0
    # Next generation is a fresh call.
    leader0b, call0b = reg.join("t", rank=0, parties=2)
    assert not leader0b and call0b is not call0


def test_collective_registry_rank_recalls_start_new_instance(small_world):
    """A rank calling again joins the *next* collective instance (its
    i-th call matches everyone else's i-th call)."""
    eng, machine, pfs, tracer = small_world
    reg = CollectiveRegistry(eng)
    _, call_a = reg.join("t", rank=0, parties=3)
    _, call_b = reg.join("t", rank=0, parties=3)
    assert call_a is not call_b
    assert call_a.sequence == 0 and call_b.sequence == 1


def test_collective_registry_rejects_group_size_mismatch(small_world):
    eng, machine, pfs, tracer = small_world
    reg = CollectiveRegistry(eng)
    reg.join("t", rank=0, parties=2)
    with pytest.raises(PFSError):
        reg.join("t", rank=1, parties=3)


def test_gopen_group_mismatch_detected(small_world):
    eng, machine, pfs, tracer = small_world
    caught = []

    def node(rank, group):
        cli = pfs.client(rank)
        try:
            yield from cli.gopen("/pfs/g", group=group)
        except PFSError:
            caught.append(rank)

    eng.process(node(0, [0, 1]))
    eng.process(node(1, [0, 1, 2]))
    try:
        eng.run()
    except PFSError:
        caught.append("crash")
    assert caught


# ---------------------------------------------------------------- buffer
def test_read_buffer_covers_and_serves(small_world):
    eng, machine, pfs, tracer = small_world
    state_holder = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/buf")
        yield from cli.write(h, 8 * KB)
        state_holder["state"] = h.state
        yield from cli.close(h)

    run_procs(eng, proc())
    state = state_holder["state"]
    buffer = ReadBuffer(state, size=4 * KB)
    assert not buffer.covers(0, 100)
    extents = state.extents.read(0, 4 * KB)
    buffer.install(0, 4 * KB, extents)
    assert buffer.covers(0, 4 * KB)
    assert not buffer.covers(0, 4 * KB + 1)
    served = buffer.serve(100, 200)
    assert sum(e.end - e.start for e in served) == 200
    assert buffer.stats.hits == 1 and buffer.stats.misses == 1


def test_read_buffer_generation_invalidates(small_world):
    eng, machine, pfs, tracer = small_world
    holder = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/buf")
        yield from cli.write(h, 4 * KB)
        holder["state"] = h.state
        buffer = ReadBuffer(h.state, size=4 * KB)
        buffer.install(0, 4 * KB, h.state.extents.read(0, 4 * KB))
        assert buffer.covers(0, 100)
        yield from cli.write(h, 100)  # any write bumps the generation
        assert not buffer.covers(0, 100)
        yield from cli.close(h)

    run_procs(eng, proc())


def test_read_buffer_uncovered_reported(small_world):
    # serve() is caller-checked: the client only calls it behind a
    # covers() branch, so an empty/invalid buffer must report
    # non-coverage rather than raise.
    eng, machine, pfs, tracer = small_world
    holder = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/buf")
        yield from cli.write(h, KB)
        holder["state"] = h.state
        yield from cli.close(h)

    run_procs(eng, proc())
    buffer = ReadBuffer(holder["state"], size=KB)
    assert not buffer.covers(0, 10)


# ---------------------------------------------------------------- costs
def test_cost_model_validation():
    with pytest.raises(PFSError):
        PFSCostModel(open_service=-1).validate()
    model = PFSCostModel().replace(open_service=0.1)
    assert model.open_service == 0.1
    with pytest.raises(PFSError):
        PFSCostModel().replace(seek_shared_service=-0.5)


def test_cost_model_override_changes_behaviour(small_world):
    """A PFS built with a huge open cost shows it in the trace."""
    from repro.machine import MachineConfig, ParagonXPS
    from repro.pablo import IOOp, Tracer
    from repro.pfs import PFS
    from repro.sim import Engine

    def open_duration(open_service):
        eng = Engine()
        machine = ParagonXPS(eng, MachineConfig(
            mesh_cols=2, mesh_rows=2, n_compute_nodes=4, n_io_nodes=2,
        ))
        tracer = Tracer()
        pfs = PFS(eng, machine,
                  costs=PFSCostModel().replace(open_service=open_service),
                  tracer=tracer)

        def proc():
            cli = pfs.client(0)
            h = yield from cli.open("/pfs/x")
            yield from cli.close(h)

        eng.process(proc())
        eng.run()
        return tracer.finish().by_op(IOOp.OPEN).events[0].duration

    assert open_duration(2.0) > 10 * open_duration(0.05)

"""Integration tests for the ESCAT workload model (miniature scale)."""

import pytest

from repro.apps import run_escat, scaled_escat_problem
from repro.apps.escat.app import PHASE1, PHASE2, PHASE3, PHASE4
from repro.apps.escat.versions import ESCAT_PROGRESSIONS, ESCAT_VERSIONS
from repro.core import io_time_breakdown
from repro.errors import WorkloadError
from repro.pablo import IOOp
from repro.units import KB


@pytest.fixture(scope="module")
def runs():
    problem = scaled_escat_problem(n_nodes=8, records_per_channel=16)
    return {v: run_escat(v, problem) for v in ("A", "B", "C")}, problem


def test_all_versions_complete(runs):
    results, _ = runs
    for v, r in results.items():
        assert r.wall_time > 0
        assert len(r.trace) > 0
        assert r.version == v
        assert r.n_nodes == 8


def test_four_phases_present(runs):
    results, _ = runs
    for r in results.values():
        phases = {e.phase for e in r.trace.events}
        assert {PHASE1, PHASE2, PHASE3, PHASE4} <= phases


def test_phase_ordering_in_time(runs):
    results, _ = runs
    for r in results.values():
        starts = {}
        for phase in (PHASE1, PHASE2, PHASE3, PHASE4):
            sub = r.trace.by_phase(phase)
            starts[phase] = min(e.start for e in sub.events)
        assert starts[PHASE1] < starts[PHASE2] < starts[PHASE3] < starts[PHASE4]


def test_version_a_node_participation(runs):
    results, _ = runs
    trace = results["A"].trace
    # Phase one: all nodes read.
    p1_readers = {e.node for e in trace.by_phase(PHASE1).by_op(IOOp.READ).events}
    assert len(p1_readers) == 8
    # Phases two-four: node zero only.
    for phase in (PHASE2, PHASE3, PHASE4):
        actors = {
            e.node for e in trace.by_phase(phase).events
            if e.op in (IOOp.READ, IOOp.WRITE)
        }
        assert actors == {0}


def test_version_c_node_participation(runs):
    results, _ = runs
    trace = results["C"].trace
    # Phase one: node zero reads, then broadcasts.
    p1_readers = {e.node for e in trace.by_phase(PHASE1).by_op(IOOp.READ).events}
    assert p1_readers == {0}
    # Phases two and three: every node does I/O.
    for phase in (PHASE2, PHASE3):
        actors = {
            e.node for e in trace.by_phase(phase).events
            if e.op in (IOOp.READ, IOOp.WRITE)
        }
        assert len(actors) == 8


def test_version_modes_match_table1(runs):
    results, _ = runs
    modes = lambda r, phase, op: {
        e.mode for e in r.trace.by_phase(phase).by_op(op).events
    }
    assert modes(results["A"], PHASE2, IOOp.WRITE) == {"M_UNIX"}
    assert modes(results["B"], PHASE2, IOOp.WRITE) == {"M_UNIX"}
    assert modes(results["C"], PHASE2, IOOp.WRITE) == {"M_ASYNC"}
    assert modes(results["B"], PHASE3, IOOp.READ) == {"M_RECORD"}
    assert modes(results["C"], PHASE3, IOOp.READ) == {"M_RECORD"}


def test_staging_volume_conservation(runs):
    """Every byte staged in phase two is re-read in phase three."""
    results, problem = runs
    for v, r in results.items():
        written = sum(
            e.nbytes for e in r.trace.by_phase(PHASE2).by_op(IOOp.WRITE).events
        )
        read = sum(
            e.nbytes for e in r.trace.by_phase(PHASE3).by_op(IOOp.READ).events
        )
        assert written == problem.quadrature_bytes
        assert read >= problem.quadrature_bytes  # re-read per energy


def test_record_reads_are_stripe_multiples(runs):
    results, problem = runs
    for v in ("B", "C"):
        sizes = {
            e.nbytes
            for e in results[v].trace.by_phase(PHASE3).by_op(IOOp.READ).events
        }
        assert sizes == {problem.record_size}
        assert problem.record_size % (64 * KB) == 0


def test_gopen_only_in_optimized_versions(runs):
    results, _ = runs
    assert len(results["A"].trace.by_op(IOOp.GOPEN)) == 0
    for v in ("B", "C"):
        assert len(results[v].trace.by_op(IOOp.GOPEN)) > 0


def test_seek_time_collapse_b_to_c(runs):
    """The M_ASYNC transition kills seek time even at mini scale."""
    results, _ = runs
    b = io_time_breakdown(results["B"].trace)
    c = io_time_breakdown(results["C"].trace)
    assert b.totals[IOOp.SEEK] > 50 * c.totals.get(IOOp.SEEK, 1e-9)


def test_deterministic_given_seed():
    problem = scaled_escat_problem(n_nodes=4, records_per_channel=8)
    r1 = run_escat("B", problem, seed=7)
    r2 = run_escat("B", problem, seed=7)
    assert r1.wall_time == r2.wall_time
    assert len(r1.trace) == len(r2.trace)
    for a, b in zip(r1.trace.events, r2.trace.events):
        assert (a.start, a.duration, a.node, a.op) == (
            b.start, b.duration, b.node, b.op)


def test_different_seeds_differ():
    problem = scaled_escat_problem(n_nodes=4, records_per_channel=8)
    r1 = run_escat("B", problem, seed=1)
    r2 = run_escat("B", problem, seed=2)
    assert r1.wall_time != r2.wall_time


def test_unknown_version_rejected():
    problem = scaled_escat_problem(n_nodes=4, records_per_channel=8)
    with pytest.raises(WorkloadError):
        run_escat("Z", problem)


def test_invalid_problem_rejected():
    with pytest.raises(WorkloadError):
        scaled_escat_problem(n_nodes=7, records_per_channel=16).validate()


def test_progressions_cover_six_builds():
    names = [v.name for v in ESCAT_PROGRESSIONS]
    assert len(names) == 6
    assert names[0] == "A" and names[-1] == "C"
    assert set(ESCAT_VERSIONS) == {"A", "B", "C"}


def test_trace_metadata(runs):
    results, problem = runs
    r = results["B"]
    assert r.trace.meta.application == "ESCAT"
    assert r.trace.meta.version == "B"
    assert r.trace.meta.nodes == 8
    assert r.trace.meta.os_release == "OSF/1 R1.2"

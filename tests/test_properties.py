"""Property-based tests (hypothesis) on core data structures.

Each property pits an implementation against a trivially correct
reference model or a mathematical invariant:

- ExtentMap vs. a byte-array "last writer wins" model;
- StripeLayout piece decomposition (coverage, disjointness, inverses);
- SizeCDF monotonicity/normalization;
- tile_sizes conservation;
- SDDF round-trip fidelity;
- TurnTaker service order;
- ReadBuffer coherence.
"""

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.base import tile_sizes
from repro.core.cdf import cdf_from_sizes
from repro.pablo import IOEvent, IOOp, Trace
from repro.pablo.sddf import read_sddf, write_sddf
from repro.pfs import ExtentMap, StripeLayout


# ------------------------------------------------------------- ExtentMap
@st.composite
def write_sequences(draw):
    n = draw(st.integers(1, 30))
    writes = []
    for token in range(1, n + 1):
        start = draw(st.integers(0, 500))
        length = draw(st.integers(1, 200))
        writes.append((start, start + length, token))
    return writes


@given(write_sequences())
@settings(max_examples=200, deadline=None)
def test_extent_map_matches_byte_model(writes):
    m = ExtentMap()
    model = {}
    for start, end, token in writes:
        m.write(start, end, token)
        for b in range(start, end):
            model[b] = token
    # Compare over the full touched range.
    horizon = max(end for _, end, _ in writes)
    extents = m.read(0, horizon)
    reconstructed = {}
    for e in extents:
        for b in range(e.start, e.end):
            assert b not in reconstructed, "extents overlap"
            reconstructed[b] = e.token
    assert reconstructed == model
    assert m.high_water == max(end for _, end, _ in writes)


@given(write_sequences(), st.integers(0, 600), st.integers(0, 200))
@settings(max_examples=100, deadline=None)
def test_extent_map_read_is_clipped_and_sorted(writes, start, length):
    m = ExtentMap()
    for s, e, t in writes:
        m.write(s, e, t)
    out = m.read(start, start + length)
    for e in out:
        assert start <= e.start < e.end <= start + length
    # Sorted and non-overlapping.
    for a, b in zip(out, out[1:]):
        assert a.end <= b.start
    assert m.covered_bytes(start, start + length) == \
        sum(e.end - e.start for e in out)


@given(write_sequences())
@settings(max_examples=50, deadline=None)
def test_extent_map_interleaved_reads_consistent(writes):
    """Reading between writes never changes the final state."""
    m1, m2 = ExtentMap(), ExtentMap()
    for s, e, t in writes:
        m1.write(s, e, t)
        m1.read(0, 50)  # force intermediate builds
        m2.write(s, e, t)
    horizon = max(e for _, e, _ in writes)
    assert [
        (x.start, x.end, x.token) for x in m1.read(0, horizon)
    ] == [
        (x.start, x.end, x.token) for x in m2.read(0, horizon)
    ]


# ------------------------------------------------------------- striping
@given(
    stripe=st.integers(1, 1 << 20),
    n_io=st.integers(1, 64),
    offset=st.integers(0, 1 << 30),
    nbytes=st.integers(0, 1 << 22),
)
@settings(max_examples=200, deadline=None)
def test_stripe_pieces_partition_request(stripe, n_io, offset, nbytes):
    layout = StripeLayout(stripe_size=stripe, n_io_nodes=n_io)
    pieces = layout.pieces(offset, nbytes)
    # Pieces exactly tile [offset, offset+nbytes).
    assert sum(p.nbytes for p in pieces) == nbytes
    pos = offset
    for p in pieces:
        assert p.file_offset == pos
        assert 0 <= p.io_node < n_io
        assert p.nbytes >= 1
        # No piece crosses a stripe boundary.
        assert (p.file_offset // stripe) == \
            ((p.file_offset + p.nbytes - 1) // stripe)
        # Piece placement agrees with the point functions.
        assert p.io_node == layout.io_node_of(p.file_offset)
        assert p.disk_offset == layout.disk_offset_of(p.file_offset)
        pos += p.nbytes


@given(
    stripe=st.integers(1, 1 << 16),
    n_io=st.integers(1, 16),
    offsets=st.lists(st.integers(0, 1 << 24), min_size=2, max_size=20,
                     unique=True),
)
@settings(max_examples=100, deadline=None)
def test_stripe_distinct_offsets_distinct_disk_addresses(stripe, n_io, offsets):
    """The (io_node, disk_offset) map is injective on byte addresses."""
    layout = StripeLayout(stripe_size=stripe, n_io_nodes=n_io)
    seen = {}
    for off in offsets:
        key = (layout.io_node_of(off), layout.disk_offset_of(off))
        assert key not in seen, f"{off} and {seen[key]} collide at {key}"
        seen[key] = off


# ------------------------------------------------------------------- CDF
@given(st.lists(st.integers(0, 10**7), min_size=1, max_size=500))
@settings(max_examples=200, deadline=None)
def test_cdf_invariants(sizes):
    cdf = cdf_from_sizes(sizes)
    assert (np.diff(cdf.count_cdf) >= -1e-12).all()
    assert (np.diff(cdf.data_cdf) >= -1e-12).all()
    assert cdf.count_cdf[-1] == 1.0
    assert abs(cdf.data_cdf[-1] - 1.0) < 1e-9
    assert cdf.n_requests == len(sizes)
    assert cdf.total_bytes == sum(sizes)
    # Count CDF at the maximum size includes everything.
    assert cdf.fraction_of_requests_at_or_below(max(sizes)) == 1.0
    # Below the minimum, nothing.
    if min(sizes) > 0:
        assert cdf.fraction_of_requests_at_or_below(min(sizes) - 1) == 0.0


@given(st.lists(st.integers(1, 10**6), min_size=1, max_size=200),
       st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_cdf_percentile_consistency(sizes, fraction):
    cdf = cdf_from_sizes(sizes)
    p = cdf.percentile_size(fraction)
    assert cdf.fraction_of_requests_at_or_below(p) >= min(fraction, 1.0) - 1e-9


# ------------------------------------------------------------ tile_sizes
@given(
    total=st.integers(0, 10**6),
    sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=6),
)
@settings(max_examples=200, deadline=None)
def test_tile_sizes_conserves_total(total, sizes):
    out = tile_sizes(total, sizes)
    assert sum(out) == total
    assert all(1 <= s <= max(sizes) for s in out)


# ------------------------------------------------------------------ SDDF
_paths = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)


@st.composite
def trace_events(draw):
    return IOEvent(
        node=draw(st.integers(0, 511)),
        op=draw(st.sampled_from(list(IOOp))),
        path=draw(_paths),
        start=draw(st.floats(0, 1e6, allow_nan=False, allow_infinity=False)),
        duration=draw(st.floats(0, 1e3, allow_nan=False,
                                allow_infinity=False)),
        nbytes=draw(st.integers(0, 1 << 30)),
        offset=draw(st.integers(-1, 1 << 40)),
        mode=draw(st.sampled_from(["", "M_UNIX", "M_RECORD", "M_ASYNC"])),
        phase=draw(_paths),
    )


@given(st.lists(trace_events(), max_size=40))
@settings(max_examples=100, deadline=None)
def test_sddf_roundtrip_property(events):
    trace = Trace(events)
    buf = io.StringIO()
    write_sddf(trace, buf)
    buf.seek(0)
    back = read_sddf(buf)
    assert len(back) == len(trace)
    for a, b in zip(trace.events, back.events):
        assert a.node == b.node and a.op == b.op and a.path == b.path
        assert a.start == b.start and a.duration == b.duration
        assert a.nbytes == b.nbytes and a.offset == b.offset
        assert a.mode == b.mode and a.phase == b.phase


# ------------------------------------------------------------- TurnTaker
@given(
    parties=st.integers(1, 12),
    arrival_order=st.permutations(list(range(12))),
    rounds=st.integers(1, 3),
)
@settings(max_examples=100, deadline=None)
def test_turn_taker_always_serves_in_rank_order(parties, arrival_order, rounds):
    from repro.sim import Engine, TurnTaker

    eng = Engine()
    tt = TurnTaker(eng, parties=parties)
    served = []
    ranks = [r for r in arrival_order if r < parties]

    def node(rank, delay):
        yield eng.timeout(delay)
        for _ in range(rounds):
            yield tt.wait_turn(rank)
            served.append(rank)
            tt.done(rank)
            yield eng.timeout(0.01)

    for pos, rank in enumerate(ranks):
        eng.process(node(rank, pos * 0.001))
    eng.run()
    assert served == list(range(parties)) * rounds

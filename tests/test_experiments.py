"""Tests for the experiment harness (fast mode)."""

import pytest

from repro.errors import AnalysisError
from repro.experiments import (
    EXPERIMENTS,
    clear_cache,
    escat_result,
    list_experiments,
    prism_result,
    run_experiment,
)
from repro.experiments import reference
from repro.pablo.records import TABLE_OP_ORDER


def test_registry_covers_every_table_and_figure():
    ids = list_experiments()
    assert [f"figure{i}" for i in range(1, 10)] == [
        x for x in ids if x.startswith("figure")
    ]
    assert [f"table{i}" for i in range(1, 6)] == [
        x for x in ids if x.startswith("table")
    ]
    for exp in EXPERIMENTS.values():
        assert exp.description


def test_unknown_experiment_rejected():
    with pytest.raises(AnalysisError):
        run_experiment("table99")


def test_run_caching_reuses_results():
    clear_cache()
    r1 = escat_result("C", fast=True)
    r2 = escat_result("C", fast=True)
    assert r1 is r2
    p1 = prism_result("B", fast=True)
    p2 = prism_result("B", fast=True)
    assert p1 is p2
    clear_cache()
    assert escat_result("C", fast=True) is not r1


def test_fast_experiments_render(capsys):
    # A couple of representative experiments end-to-end in fast mode.
    text = run_experiment("table5", fast=True)
    assert "Table 5" in text and "read" in text
    text = run_experiment("figure2", fast=True)
    assert "Figure 2" in text


def test_reference_tables_well_formed():
    for version, rows in reference.TABLE2_ESCAT.items():
        assert version in ("A", "B", "C")
        total = sum(v for v in rows.values() if v)
        assert 95.0 < total < 105.0  # percentages sum to ~100
    for version, rows in reference.TABLE5_PRISM.items():
        total = sum(v for v in rows.values() if v)
        assert 95.0 < total < 105.0
    valid_ops = {op.value for op in TABLE_OP_ORDER}
    for rows in reference.TABLE2_ESCAT.values():
        assert set(rows) <= valid_ops


def test_reference_table3_rows():
    assert reference.TABLE3_ESCAT["ethylene/C"]["All I/O"] == 0.73
    assert reference.TABLE3_ESCAT["carbon-monoxide/C"]["All I/O"] == 19.40


def test_figure_reference_claims_present():
    assert set(reference.FIGURES) == {f"figure{i}" for i in range(1, 10)}
    assert reference.FIGURES["figure6"]["reduction"] == 0.23


def test_run_guarded_folds_generic_exceptions():
    from repro.experiments.runner import run_guarded

    def blows_up():
        return {}["missing"]  # KeyError: not a ReproError

    guarded = run_guarded(blows_up)
    assert not guarded.completed
    assert guarded.error.startswith("KeyError")
    assert "blows_up" in guarded.traceback  # evidence survives the fold
    assert not guarded.timed_out


def test_run_guarded_lets_interrupts_propagate():
    from repro.experiments.runner import run_guarded

    def interrupted():
        raise KeyboardInterrupt()

    with pytest.raises(KeyboardInterrupt):
        run_guarded(interrupted)

    def exits():
        raise SystemExit(3)

    with pytest.raises(SystemExit):
        run_guarded(exits)


def test_concurrent_stores_of_same_run_key(tmp_path):
    # Two workers racing to persist the same run key (exactly what a
    # sweep without driver-side dedup would do) must leave one valid
    # entry: atomic temp-file renames mean no torn reads, and the
    # sidecar-last commit order means no loadable half-entry.
    import multiprocessing

    from repro.apps import run_escat, scaled_escat_problem
    from repro.experiments import cache

    problem = scaled_escat_problem(
        n_nodes=2, n_channels=1, records_per_channel=2, n_energies=1,
    )
    result = run_escat("C", problem, seed=4242)
    key = cache.run_key(kind="race-test", seed=4242)

    barrier = multiprocessing.Barrier(2)

    def racer():
        barrier.wait()
        for _ in range(5):
            cache.store(key, result)

    procs = [multiprocessing.Process(target=racer) for _ in range(2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0

    loaded = cache.load(key)
    assert loaded is not None
    assert len(loaded.trace) == len(result.trace)
    assert loaded.wall_time == result.wall_time


def test_cache_roundtrips_fault_summary():
    from repro.apps import run_escat, scaled_escat_problem
    from repro.experiments import cache
    from repro.faults import FaultPlan
    from repro.machine import MachineConfig

    problem = scaled_escat_problem(
        n_nodes=2, n_channels=1, records_per_channel=2, n_energies=1,
    )
    plan = FaultPlan.seeded(
        seed=7, horizon=50.0,
        n_io_nodes=MachineConfig.caltech().n_io_nodes,
        classes=("slowdown",),
    )
    result = run_escat("C", problem, seed=7, fault_plan=plan)
    assert result.fault_summary is not None
    key = cache.run_key(kind="fault-roundtrip", seed=7)
    cache.store(key, result)
    loaded = cache.load(key)
    assert loaded is not None
    assert loaded.fault_summary == result.fault_summary

"""Tests for the experiment harness (fast mode)."""

import pytest

from repro.errors import AnalysisError
from repro.experiments import (
    EXPERIMENTS,
    clear_cache,
    escat_result,
    list_experiments,
    prism_result,
    run_experiment,
)
from repro.experiments import reference
from repro.pablo.records import TABLE_OP_ORDER


def test_registry_covers_every_table_and_figure():
    ids = list_experiments()
    assert [f"figure{i}" for i in range(1, 10)] == [
        x for x in ids if x.startswith("figure")
    ]
    assert [f"table{i}" for i in range(1, 6)] == [
        x for x in ids if x.startswith("table")
    ]
    for exp in EXPERIMENTS.values():
        assert exp.description


def test_unknown_experiment_rejected():
    with pytest.raises(AnalysisError):
        run_experiment("table99")


def test_run_caching_reuses_results():
    clear_cache()
    r1 = escat_result("C", fast=True)
    r2 = escat_result("C", fast=True)
    assert r1 is r2
    p1 = prism_result("B", fast=True)
    p2 = prism_result("B", fast=True)
    assert p1 is p2
    clear_cache()
    assert escat_result("C", fast=True) is not r1


def test_fast_experiments_render(capsys):
    # A couple of representative experiments end-to-end in fast mode.
    text = run_experiment("table5", fast=True)
    assert "Table 5" in text and "read" in text
    text = run_experiment("figure2", fast=True)
    assert "Figure 2" in text


def test_reference_tables_well_formed():
    for version, rows in reference.TABLE2_ESCAT.items():
        assert version in ("A", "B", "C")
        total = sum(v for v in rows.values() if v)
        assert 95.0 < total < 105.0  # percentages sum to ~100
    for version, rows in reference.TABLE5_PRISM.items():
        total = sum(v for v in rows.values() if v)
        assert 95.0 < total < 105.0
    valid_ops = {op.value for op in TABLE_OP_ORDER}
    for rows in reference.TABLE2_ESCAT.values():
        assert set(rows) <= valid_ops


def test_reference_table3_rows():
    assert reference.TABLE3_ESCAT["ethylene/C"]["All I/O"] == 0.73
    assert reference.TABLE3_ESCAT["carbon-monoxide/C"]["All I/O"] == 19.40


def test_figure_reference_claims_present():
    assert set(reference.FIGURES) == {f"figure{i}" for i in range(1, 10)}
    assert reference.FIGURES["figure6"]["reduction"] == 0.23

"""REPRO_SANITIZE invariant-sanitizer tests.

The contract under test: with sanitization off (the default) the hot
layers carry no checks and silently execute even deliberately
corrupted state; with it on, the same corruption fails loudly at the
offending call with :class:`SanitizeError` — and clean runs stay
byte-identical either way.
"""

import io
from types import SimpleNamespace

import pytest

from repro import sanitize
from repro.apps import run_escat, scaled_escat_problem
from repro.errors import SanitizeError
from repro.pablo.sddf import write_sddf
from repro.pfs import datapath
from repro.pfs.buffering import (
    ReadBuffer,
    SanitizedReadBuffer,
    make_read_buffer,
)
from repro.pfs.datapath import PlanChain, SanitizedPlanChain, _E_SEND, _INF
from repro.pfs.file import Extent
from repro.sim import Engine
from repro.sim.events import Event, NORMAL


@pytest.fixture
def sanitized():
    sanitize.set_enabled(True)
    yield
    sanitize.set_enabled(None)


@pytest.fixture
def unsanitized():
    # Pin sanitize *off* so the "silent by default" tests hold even
    # when the whole suite runs under REPRO_SANITIZE=1 (the CI cell).
    sanitize.set_enabled(False)
    yield
    sanitize.set_enabled(None)


def test_flag_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitize.enabled() is False  # default off
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize.enabled() is True
    sanitize.set_enabled(False)
    try:
        assert sanitize.enabled() is False  # override beats environ
    finally:
        sanitize.set_enabled(None)


# ---------------------------------------------------------------------
# PlanChain: deliberate ordering bug
# ---------------------------------------------------------------------

def _corrupted_chain(cls):
    """A minimal chain whose unapplied tail is out of timestamp order
    while ``dirty`` claims it is sorted — the exact state a broken
    effect-emission path would leave behind."""
    chain = cls.__new__(cls)
    chain.dp = SimpleNamespace(
        net=SimpleNamespace(messages=0, bytes_moved=0)
    )
    chain.server = SimpleNamespace(
        ionode=SimpleNamespace(index=0, disk=None), plan=None
    )
    chain.env = None
    chain.spans = []
    chain.effects = [(2.0, _E_SEND, 1, 10), (1.0, _E_SEND, 1, 10)]
    chain.cursor = 0
    chain.dirty = False  # the bug: tail unsorted but not flagged
    chain.next_due = 1.0
    chain.const = (0.0,) * 6
    chain.ch_free = -1.0
    chain.ch_arrival = -1.0
    chain.cpu_free = -1.0
    chain.cpu_arrival = -1.0
    chain.next_off = None
    if cls is SanitizedPlanChain:
        chain._san_last = -_INF
    return chain


def test_planchain_ordering_bug_silent_by_default(unsanitized):
    chain = _corrupted_chain(PlanChain)
    chain.apply_until(3.0)  # applies out of order without complaint
    assert chain.cursor == 2
    assert chain.dp.net.messages == 2


def test_planchain_ordering_bug_caught_when_sanitized():
    chain = _corrupted_chain(SanitizedPlanChain)
    with pytest.raises(SanitizeError, match="out of order"):
        chain.apply_until(3.0)


def test_planchain_stale_next_due_caught():
    chain = _corrupted_chain(SanitizedPlanChain)
    chain.effects.sort(key=lambda e: e[0])
    chain.next_due = 5.0  # stale-high: both effects are already due
    with pytest.raises(SanitizeError, match="stale-high"):
        chain.apply_until(3.0)


def test_planchain_injected_bug_end_to_end(sanitized, monkeypatch):
    # Corrupt every chain the datapath plans: reverse the unapplied
    # tail and clear the dirty flag as each span lands.
    orig_add = PlanChain.add

    def corrupting_add(self, span):
        tail = self.effects[self.cursor:]
        if len(tail) >= 2:
            self.effects[self.cursor:] = tail[::-1]
            self.dirty = False
        orig_add(self, span)

    monkeypatch.setattr(PlanChain, "add", corrupting_add)
    with pytest.raises(SanitizeError):
        run_escat("B", scaled_escat_problem(8))


def test_planchain_injected_bug_silent_without_sanitize(unsanitized, monkeypatch):
    orig_add = PlanChain.add

    def corrupting_add(self, span):
        tail = self.effects[self.cursor:]
        if len(tail) >= 2:
            self.effects[self.cursor:] = tail[::-1]
            self.dirty = False
        orig_add(self, span)

    monkeypatch.setattr(PlanChain, "add", corrupting_add)
    result = run_escat("B", scaled_escat_problem(8))  # no crash
    assert result.wall_time > 0


# ---------------------------------------------------------------------
# Engine: calendar ordering + pool double-free
# ---------------------------------------------------------------------

def _insert_past_event(env):
    def proc(env):
        yield env.timeout(10.0)
        ev = Event(env)
        ev._ok = True
        env._insert(env.now - 5.0, NORMAL, ev)
        yield env.timeout(1.0)

    env.process(proc(env))


def _rewind_between_runs(env):
    env.run(until=10.0)
    ev = Event(env)
    ev._ok = True
    env._insert(5.0, NORMAL, ev)
    dispatched_at = []
    ev.callbacks.append(lambda _ev: dispatched_at.append(env.now))
    return dispatched_at


def test_engine_midrun_past_insert_caught(sanitized):
    env = Engine()
    _insert_past_event(env)
    with pytest.raises(SanitizeError, match="moved backwards"):
        env.run()


def test_engine_midrun_past_insert_confusing_by_default(unsanitized):
    # Without the sanitizer the same corruption surfaces as a bare
    # KeyError on an already-retired bucket, far from the cause.
    env = Engine()
    _insert_past_event(env)
    with pytest.raises(KeyError):
        env.run()


def test_engine_rewind_between_runs_caught(sanitized):
    env = Engine()
    _rewind_between_runs(env)
    with pytest.raises(SanitizeError, match="moved backwards"):
        env.run()


def test_engine_rewind_between_runs_silent_by_default(unsanitized):
    env = Engine()
    dispatched_at = _rewind_between_runs(env)
    env.run()
    assert dispatched_at == [5.0]  # the clock silently ran backwards


def test_engine_pool_double_free_caught(sanitized):
    env = Engine()
    ev = env.timeout(1.0)
    env._timeout_pool.append(ev)  # simulate a premature free
    with pytest.raises(SanitizeError, match="double-free"):
        env.run()


def test_engine_pool_double_free_silent_by_default(unsanitized):
    env = Engine()
    ev = env.timeout(1.0)
    env._timeout_pool.append(ev)
    env.run()
    assert env._timeout_pool.count(ev) == 2  # aliased, undetected


def test_sanitized_engine_runs_clean_sim(sanitized):
    env = Engine()

    def proc(env):
        for _ in range(100):
            yield env.timeout(0.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 50.0


# ---------------------------------------------------------------------
# ReadBuffer generation tripwire
# ---------------------------------------------------------------------

def _buffer(cls=None):
    state = SimpleNamespace(path="/f", size=0, _next_token=0)
    if cls is None:
        buf = make_read_buffer(state, 4096)
    else:
        buf = cls(state, 4096)
    buf.install(0, 100, [Extent(0, 100, 0)])
    return state, buf


def test_make_read_buffer_selects_by_flag(sanitized):
    _, buf = _buffer()
    assert type(buf) is SanitizedReadBuffer
    sanitize.set_enabled(False)
    _, buf = _buffer()
    assert type(buf) is ReadBuffer


def test_buffer_serves_covered_reads_when_sanitized():
    _, buf = _buffer(SanitizedReadBuffer)
    extents = buf.serve(10, 20)
    assert extents and extents[0].start == 10 and extents[0].end == 30


def test_buffer_stale_generation_caught():
    state, buf = _buffer(SanitizedReadBuffer)
    state._next_token = 1  # an intervening write bumped the generation
    with pytest.raises(SanitizeError, match="stale"):
        buf.serve(10, 20)


def test_buffer_uncovered_range_caught():
    _, buf = _buffer(SanitizedReadBuffer)
    with pytest.raises(SanitizeError, match="outside buffered"):
        buf.serve(90, 20)


def test_buffer_stale_generation_silent_by_default(unsanitized):
    state, buf = _buffer(ReadBuffer)
    state._next_token = 1
    assert buf.serve(10, 20)  # happily serves stale bytes


# ---------------------------------------------------------------------
# Byte identity + class selection
# ---------------------------------------------------------------------

def _sddf():
    result = run_escat("B", scaled_escat_problem(4))
    buf = io.StringIO()
    write_sddf(result.trace, buf)
    return buf.getvalue()


def test_sanitized_run_is_byte_identical():
    sanitize.set_enabled(False)
    try:
        base = _sddf()
        sanitize.set_enabled(True)
        assert _sddf() == base
    finally:
        sanitize.set_enabled(None)


def test_datapath_selects_sanitized_classes(sanitized):
    dp = datapath.DataPath.__new__(datapath.DataPath)
    # Only exercise the class-selection tail of __init__.
    if sanitize.enabled():
        assert SanitizedPlanChain is not PlanChain
    sanitize.set_enabled(True)
    env = Engine()
    assert env._sanitize is True

"""Crash-tolerance tests for the sharded sweep engine.

These tests exercise every failure class the engine claims to survive:
worker crash (SIGKILL mid-point), poisoned points (crash every
attempt), per-point timeouts, and driver death (SIGKILL the driver,
then resume from the journal with zero re-simulation).  The box
running the suite may have a single core, so parallelism assertions
are structural (counters, shard composition) rather than timing-based.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.cli import main
from repro.errors import SweepError
from repro.experiments import sweep
from repro.experiments.sweep.grid import SweepPoint
from repro.experiments.sweep.scheduler import SweepTelemetry


def _probe_points(behaviors, start_seed, **kwargs):
    return [
        SweepPoint(index=i, kind="probe", version=behavior,
                   seed=start_seed + i, **kwargs)
        for i, behavior in enumerate(behaviors)
    ]


# -- grid specs ----------------------------------------------------------

def test_grid_expansion_is_deterministic():
    spec = {
        "name": "g",
        "apps": [{"kind": "probe", "versions": ["ok", "slow"]}],
        "seeds": [1, 2],
        "machines": [{}, {"n_io_nodes": 4}],
        "faults": ["none", {"class": "disk", "horizon": 10.0}],
        "repeat": 2,
    }
    a = sweep.SweepGrid.from_dict(spec)
    b = sweep.SweepGrid.from_dict(json.loads(json.dumps(spec)))
    assert a.grid_hash == b.grid_hash
    pa, pb = a.expand(), b.expand()
    assert [p.point_id for p in pa] == [p.point_id for p in pb]
    assert len(pa) == 2 * 2 * 2 * 2 * 2
    assert [p.index for p in pa] == list(range(len(pa)))
    # Round-trips through the journal-header form.
    again = sweep.SweepGrid.from_dict(a.to_dict())
    assert again.grid_hash == a.grid_hash


@pytest.mark.parametrize("broken", [
    {"apps": [{"kind": "probe", "versions": ["ok"]}]},          # no name
    {"name": "g", "apps": []},                                   # no apps
    {"name": "g", "apps": [{"kind": "nope", "versions": ["A"]}]},
    {"name": "g", "apps": [{"kind": "probe", "versions": ["ok"]}],
     "seeds": []},
    {"name": "g", "apps": [{"kind": "probe", "versions": ["ok"]}],
     "machines": [{"bogus": 1}]},
    {"name": "g", "apps": [{"kind": "probe", "versions": ["ok"]}],
     "faults": [{"class": "not-a-fault", "horizon": 1.0}]},
    {"name": "g", "apps": [{"kind": "probe", "versions": ["ok"]}],
     "repeat": 0},
    {"name": "g", "apps": [{"kind": "probe", "versions": ["ok"]}],
     "surprise": True},
])
def test_grid_spec_validation(broken):
    with pytest.raises(SweepError):
        sweep.SweepGrid.from_dict(broken)


# -- happy path / dedup / stealing ---------------------------------------

def test_sweep_completes_and_counts(tmp_path):
    grid = sweep.SweepGrid.from_dict({
        "name": "happy",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [101, 102, 103],
    })
    journal = tmp_path / "happy.jsonl"
    outcome = sweep.run_grid(grid, journal, jobs=2, backoff=0.01)
    assert outcome.complete
    assert outcome.counts == {
        "total": 3, "completed": 3, "quarantined": 0, "pending": 0,
    }
    assert outcome.telemetry["points_done"] == 3
    assert outcome.telemetry["workers_spawned"] >= 2
    # Every completed point carries the deterministic summary columns.
    for record in outcome.done.values():
        summary = record["summary"]
        assert summary["application"] == "ESCAT"
        assert summary["wall_time"] > 0
        assert summary["events"] > 0


def test_thousand_point_grid_dedups_through_run_cache():
    # 1008 points, only 8 distinct runs: repeats share a run key, so
    # the engine parks clones and completes them driver-side from the
    # first execution -- the run cache and dedup do all the real work.
    grid = sweep.SweepGrid.from_dict({
        "name": "bulk",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [201, 202, 203, 204, 205, 206, 207, 208],
        "repeat": 126,
    })
    points = grid.expand()
    assert len(points) == 1008
    outcome = sweep.run_points(points, jobs=4, backoff=0.01)
    assert outcome.complete
    assert outcome.counts["completed"] == 1008
    assert len(outcome.executed) <= 8
    assert outcome.telemetry["dedup_hits"] == 1008 - len(outcome.executed)
    assert outcome.telemetry["points_done"] == 1008


def test_work_stealing_from_imbalanced_shards():
    # Round-robin sharding puts the slow probes on worker 0 (even
    # indices) and the cheap ones on worker 1; worker 1 drains its own
    # shard and must steal the remaining slow points.  Structural on
    # any core count: six cheap points finish well inside one slow one.
    behaviors = ["slow" if i % 2 == 0 else "ok" for i in range(12)]
    points = _probe_points(behaviors, start_seed=300)
    outcome = sweep.run_points(points, jobs=2, backoff=0.01)
    assert outcome.complete
    assert outcome.counts["completed"] == 12
    assert outcome.telemetry["steals"] > 0


def test_telemetry_registry_exposes_counters():
    telemetry = SweepTelemetry()
    telemetry.points_done = 5
    telemetry.steals = 2
    registry = telemetry.as_registry()
    families = {f["name"]: f for f in registry.collect()}
    assert families["sweep_points_done"]["samples"][0]["value"] == 5.0
    assert families["sweep_steals"]["samples"][0]["value"] == 2.0
    # Live view: mutating the counter changes the next collection.
    telemetry.points_done = 6
    families = {f["name"]: f for f in registry.collect()}
    assert families["sweep_points_done"]["samples"][0]["value"] == 6.0


# -- failure classes -----------------------------------------------------

def test_crashed_worker_point_is_retried_and_completes():
    sweep.reset_crash_markers()
    points = _probe_points(["crash-once", "ok"], start_seed=400)
    outcome = sweep.run_points(points, jobs=2, retries=2, backoff=0.01)
    assert outcome.complete
    assert outcome.counts["completed"] == 2
    assert outcome.telemetry["worker_crashes"] >= 1
    assert outcome.telemetry["retries"] >= 1


def test_poisoned_point_quarantines_without_failing_sweep():
    points = _probe_points(["crash", "ok", "ok"], start_seed=410)
    outcome = sweep.run_points(points, jobs=2, retries=1, backoff=0.01)
    assert outcome.complete
    assert outcome.counts["quarantined"] == 1
    assert outcome.counts["completed"] == 2
    assert outcome.telemetry["points_quarantined"] == 1
    record = next(iter(outcome.quarantined.values()))
    assert "died mid-point" in record["error"]
    assert record["attempts"] == 2  # budget respected: 1 retry + final


def test_failing_point_quarantines_with_traceback():
    points = _probe_points(["error", "ok"], start_seed=420)
    outcome = sweep.run_points(points, jobs=2, retries=0, backoff=0.01)
    assert outcome.counts["quarantined"] == 1
    record = next(iter(outcome.quarantined.values()))
    assert "ZeroDivisionError" in record["error"]
    assert "ZeroDivisionError" in (record["traceback"] or "")


def test_hung_point_times_out_and_quarantines():
    points = _probe_points(["hang", "ok"], start_seed=430)
    start = time.monotonic()
    outcome = sweep.run_points(
        points, jobs=2, retries=0, backoff=0.01, timeout=0.5,
    )
    assert outcome.complete
    assert time.monotonic() - start < 30.0
    assert outcome.counts["quarantined"] == 1
    assert outcome.counts["completed"] == 1
    assert outcome.telemetry["timeouts"] >= 1


def test_serial_inline_path_isolates_failures():
    points = _probe_points(["error", "ok"], start_seed=440)
    outcome = sweep.run_points(points, jobs=1, retries=0)
    assert outcome.counts == {
        "total": 2, "completed": 1, "quarantined": 1, "pending": 0,
    }


# -- the journal ---------------------------------------------------------

def test_journal_tolerates_torn_final_line(tmp_path):
    grid = sweep.SweepGrid.from_dict({
        "name": "torn",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [501],
    })
    journal = tmp_path / "torn.jsonl"
    sweep.run_grid(grid, journal, jobs=1)
    with open(journal, "a") as stream:
        stream.write('{"event": "done", "point": "tr')  # killed mid-write
    state = sweep.read_journal(journal)
    assert state.torn_lines == 1
    assert len(state.done) == 1


def test_journal_rejects_mid_file_corruption(tmp_path):
    journal = tmp_path / "corrupt.jsonl"
    journal.write_text(
        '{"event": "sweep", "grid": {}, "n_points": 1}\n'
        "NOT JSON\n"
        '{"event": "finished"}\n'
    )
    with pytest.raises(SweepError, match="corrupt at line 2"):
        sweep.read_journal(journal)


def test_journal_requires_header(tmp_path):
    journal = tmp_path / "headerless.jsonl"
    journal.write_text('{"event": "done", "point": "abc"}\n')
    with pytest.raises(SweepError, match="no header"):
        sweep.read_journal(journal)


def test_run_grid_refuses_existing_journal(tmp_path):
    grid = sweep.SweepGrid.from_dict({
        "name": "dup",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [502],
    })
    journal = tmp_path / "dup.jsonl"
    sweep.run_grid(grid, journal, jobs=1)
    with pytest.raises(SweepError, match="already exists"):
        sweep.run_grid(grid, journal, jobs=1)


# -- resume after driver death -------------------------------------------

def _driver_body(grid_spec, journal):
    grid = sweep.SweepGrid.from_dict(grid_spec)
    sweep.run_grid(grid, journal, jobs=2, backoff=0.01)


def test_resume_after_driver_sigkill(tmp_path):
    # The acceptance test: SIGKILL the driver mid-sweep, resume from
    # the journal, complete the grid with zero re-simulation of
    # journaled-complete points, and render an aggregate bit-identical
    # to an uninterrupted run.  The cheap "ok" probes complete early
    # (giving the parent something to observe), the slow ones keep the
    # sweep busy long enough to be killed mid-flight.
    spec = {
        "name": "killed",
        "apps": [{"kind": "probe", "versions": ["ok", "slow"]}],
        "seeds": [601, 602, 603, 604, 605, 606],
    }
    journal = tmp_path / "killed.jsonl"
    driver = multiprocessing.Process(
        target=_driver_body, args=(spec, str(journal)),
    )
    driver.start()
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if journal.exists() and journal.read_text().count(
            '"event":"done"'
        ) >= 2:
            break
        time.sleep(0.01)
    else:
        pytest.fail("driver never completed two points")
    os.kill(driver.pid, signal.SIGKILL)
    driver.join()
    assert driver.exitcode == -signal.SIGKILL

    before = sweep.read_journal(journal)
    assert not before.finished
    assert 2 <= len(before.done) < 12

    outcome = sweep.resume(journal, jobs=2, backoff=0.01)
    assert outcome.complete
    assert outcome.counts["completed"] == 12
    # Zero redundant simulation: nothing this session executed was
    # already terminal in the journal.
    assert not (outcome.executed & set(before.done))
    assert len(outcome.executed) == 12 - len(before.done)

    after = sweep.read_journal(journal)
    points = sweep.SweepGrid.from_dict(spec).expand()
    resumed_aggregate = sweep.render_aggregate(
        points, after.done, after.quarantined, grid_name="killed",
    )
    fresh_journal = tmp_path / "fresh.jsonl"
    sweep.run_grid(
        sweep.SweepGrid.from_dict(spec), fresh_journal, jobs=2,
        backoff=0.01,
    )
    fresh = sweep.read_journal(fresh_journal)
    fresh_aggregate = sweep.render_aggregate(
        points, fresh.done, fresh.quarantined, grid_name="killed",
    )
    assert resumed_aggregate == fresh_aggregate


def test_resume_rejects_foreign_points(tmp_path):
    grid = sweep.SweepGrid.from_dict({
        "name": "strays",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [620],
    })
    journal = tmp_path / "strays.jsonl"
    sweep.run_grid(grid, journal, jobs=1)
    with open(journal, "a") as stream:
        stream.write(json.dumps({
            "event": "done", "point": "f" * 16, "summary": {},
        }) + "\n")
    with pytest.raises(SweepError, match="outside its own grid"):
        sweep.resume(journal, jobs=1)


# -- aggregate -----------------------------------------------------------

def test_partial_aggregate_reports_pending_and_quarantined(tmp_path):
    points = _probe_points(["ok", "error"], start_seed=700)
    outcome = sweep.run_points(points, jobs=2, retries=0, backoff=0.01)
    pending_point = SweepPoint(index=2, kind="probe", version="ok",
                               seed=750)
    table = sweep.build_table(
        points + [pending_point], outcome.done, outcome.quarantined,
    )
    assert table["status"] == ["done", "quarantined", "pending"]
    assert table["wall_time"][0] > 0
    assert table["wall_time"][1] is None
    assert "ZeroDivisionError" in table["error"][1]
    report = sweep.partial_report(
        points, outcome.done, outcome.quarantined, grid_name="p",
    )
    assert "1 done" in report and "1 quarantined" in report
    assert "ZeroDivisionError" in report


# -- CLI -----------------------------------------------------------------

def test_cli_sweep_run_status_resume(tmp_path, capsys):
    grid_file = tmp_path / "grid.json"
    grid_file.write_text(json.dumps({
        "name": "cli-grid",
        "apps": [{"kind": "probe", "versions": ["ok"]}],
        "seeds": [801, 802],
    }))
    journal = tmp_path / "cli.jsonl"
    aggregate = tmp_path / "agg.json"
    assert main([
        "sweep", "run", str(grid_file), "--journal", str(journal),
        "--jobs", "2", "--backoff", "0.01",
        "--aggregate", str(aggregate),
    ]) == 0
    out = capsys.readouterr().out
    assert "2 done" in out and "telemetry:" in out
    payload = json.loads(aggregate.read_text())
    assert payload["counts"]["done"] == 2
    assert payload["columns"]["status"] == ["done", "done"]

    assert main(["sweep", "status", str(journal)]) == 0
    assert "0 pending" in capsys.readouterr().out

    # Resuming a finished sweep is a journaled no-op.
    assert main([
        "sweep", "resume", str(journal), "--jobs", "1",
    ]) == 0
    assert "2 done" in capsys.readouterr().out

    # A second `run` over the same journal must refuse (resume owns it).
    assert main([
        "sweep", "run", str(grid_file), "--journal", str(journal),
    ]) == 1
    assert "already exists" in capsys.readouterr().err


def test_cli_sweep_status_missing_journal(tmp_path, capsys):
    assert main(["sweep", "status", str(tmp_path / "nope.jsonl")]) == 1
    assert "cannot read sweep journal" in capsys.readouterr().err


# -- engine clients ------------------------------------------------------

def test_prewarm_isolates_bad_specs():
    from repro.experiments.parallel import prewarm

    errors = {}
    completed = prewarm(
        jobs=2, fast=True,
        specs=[("escat", "C"), ("escat", "nope"), ("prism", "B")],
        errors=errors,
    )
    assert completed == 2
    assert list(errors) == ["escat/nope"]
    assert "unknown ESCAT version" in errors["escat/nope"]


def test_prewarm_serial_isolates_bad_specs():
    from repro.experiments.parallel import prewarm

    errors = {}
    completed = prewarm(
        jobs=1, fast=True,
        specs=[("escat", "C"), ("escat", "nope")],
        errors=errors,
    )
    assert completed == 1
    assert "unknown ESCAT version" in errors["escat/nope"]


def test_chaos_report_parallel_matches_serial():
    from repro.experiments.chaos import chaos_report

    parallel = chaos_report(app="escat", classes=["disk"], jobs=2)
    serial = chaos_report(app="escat", classes=["disk"], jobs=1)
    assert parallel.format() == serial.format()

"""Edge-case tests for the DES kernel: failures, interrupts, and
composition corners."""

import pytest

from repro.sim import (
    Barrier,
    Engine,
    FilterStore,
    Interrupt,
    Resource,
    Store,
)


def test_all_of_fails_if_member_fails():
    eng = Engine()
    caught = []

    def failer(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("member died")

    def waiter(eng, p1, p2):
        try:
            yield eng.all_of([p1, p2])
        except RuntimeError as exc:
            caught.append(str(exc))

    p1 = eng.process(failer(eng))
    p2 = eng.process((eng.timeout(5.0) for _ in range(1)))

    # Wrap timeouts in a real process for p2.
    def sleeper(eng):
        yield eng.timeout(5.0)

    p2 = eng.process(sleeper(eng))
    eng.process(waiter(eng, p1, p2))
    eng.run()
    assert caught == ["member died"]


def test_any_of_failure_propagates_if_first():
    eng = Engine()
    caught = []

    def failer(eng):
        yield eng.timeout(1.0)
        raise ValueError("fast failure")

    def sleeper(eng):
        yield eng.timeout(10.0)

    def waiter(eng, p1, p2):
        try:
            yield eng.any_of([p1, p2])
        except ValueError as exc:
            caught.append(str(exc))

    p1 = eng.process(failer(eng))
    p2 = eng.process(sleeper(eng))
    eng.process(waiter(eng, p1, p2))
    eng.run()
    assert caught == ["fast failure"]


def test_interrupt_while_waiting_on_resource():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = []

    def holder(eng, res):
        with res.request() as req:
            yield req
            yield eng.timeout(10.0)

    def waiter(eng, res):
        req = res.request()
        try:
            yield req
            log.append("granted")
        except Interrupt:
            log.append("interrupted")
            res.release(req)  # withdraw from the queue

    def interrupter(eng, victim):
        yield eng.timeout(1.0)
        victim.interrupt()

    eng.process(holder(eng, res))
    victim = eng.process(waiter(eng, res))
    eng.process(interrupter(eng, victim))
    eng.run()
    assert log == ["interrupted"]
    assert len(res.queue) == 0  # withdrawn, not leaked


def test_interrupt_handled_and_continue():
    eng = Engine()
    log = []

    def resilient(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            log.append(intr.cause)
        yield eng.timeout(1.0)
        log.append(eng.now)

    def interrupter(eng, victim):
        yield eng.timeout(2.0)
        victim.interrupt("poke")

    victim = eng.process(resilient(eng))
    eng.process(interrupter(eng, victim))
    eng.run()
    assert log == ["poke", 3.0]


def test_nested_process_failure_propagates_to_parent():
    eng = Engine()
    caught = []

    def child(eng):
        yield eng.timeout(1.0)
        raise KeyError("child exploded")

    def parent(eng):
        try:
            yield eng.process(child(eng))
        except KeyError:
            caught.append("handled in parent")

    eng.process(parent(eng))
    eng.run()
    assert caught == ["handled in parent"]


def test_event_failure_without_waiter_crashes_run():
    eng = Engine()

    def firer(eng, ev):
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("nobody listening"))

    ev = eng.event()
    eng.process(firer(eng, ev))
    with pytest.raises(RuntimeError, match="nobody listening"):
        eng.run()


def test_event_failure_defused_does_not_crash():
    eng = Engine()

    def firer(eng, ev):
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("handled elsewhere"))

    ev = eng.event()
    ev.defuse()
    eng.process(firer(eng, ev))
    eng.run()
    assert not ev.ok


def test_condition_value_mapping_api():
    eng = Engine()
    seen = {}

    def proc(eng):
        t1 = eng.timeout(1.0, value="one")
        t2 = eng.timeout(2.0, value="two")
        result = yield eng.all_of([t1, t2])
        seen["len"] = len(result)
        seen["t1"] = result[t1]
        seen["items"] = [result[e] for e in result]

    eng.process(proc(eng))
    eng.run()
    assert seen["len"] == 2
    assert seen["t1"] == "one"
    assert seen["items"] == ["one", "two"]


def test_condition_value_unknown_event_keyerror():
    eng = Engine()
    errors = []

    def proc(eng):
        t1 = eng.timeout(1.0)
        stranger = eng.timeout(1.5)
        result = yield eng.all_of([t1])
        try:
            result[stranger]
        except KeyError:
            errors.append("keyerror")

    eng.process(proc(eng))
    eng.run()
    assert errors == ["keyerror"]


def test_store_put_get_same_instant_ordering():
    eng = Engine()
    got = []

    def both(eng, store):
        yield store.put("x")
        got.append((yield store.get()))

    eng.process(both(eng, Store(eng)))
    eng.run()
    assert got == ["x"]


def test_filter_store_predicate_exception_surfaces():
    eng = Engine()
    store = FilterStore(eng)

    def bad_pred(item):
        raise RuntimeError("predicate bug")

    def consumer(eng, store):
        yield store.get(bad_pred)

    def producer(eng, store):
        yield store.put(1)

    eng.process(consumer(eng, store))
    eng.process(producer(eng, store))
    with pytest.raises(RuntimeError, match="predicate bug"):
        eng.run()


def test_barrier_more_arrivals_than_parties_wraps():
    eng = Engine()
    bar = Barrier(eng, parties=2)
    cycles = []

    def party(eng, bar, n):
        for _ in range(n):
            cycles.append((yield bar.wait()))

    eng.process(party(eng, bar, 2))
    eng.process(party(eng, bar, 2))
    eng.run()
    assert sorted(cycles) == [0, 0, 1, 1]


def test_run_until_event_that_fails():
    eng = Engine()

    def failer(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("terminal")

    p = eng.process(failer(eng))
    with pytest.raises(RuntimeError, match="terminal"):
        eng.run(until=p)


def test_zero_delay_timeout_runs_in_order():
    eng = Engine()
    order = []

    def proc(eng, tag):
        yield eng.timeout(0.0)
        order.append(tag)

    for tag in ("a", "b"):
        eng.process(proc(eng, tag))
    eng.run()
    assert order == ["a", "b"]
    assert eng.now == 0.0

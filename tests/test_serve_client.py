"""Tests for the serve client's typed error mapping and the load
generator (satellite: 400/404/409/503 each raise their exception
class, connection-refused maps to ``ServeConnectionError``, and the
closed-loop load generator produces a gateable payload)."""

import io
import json
import socket
import urllib.error

import pytest

from repro.errors import (
    ServeConnectionError,
    ServeDuplicateJobError,
    ServeJobNotFoundError,
    ServeProtocolError,
    ServeSaturatedError,
    ServeSpecError,
)
from repro.experiments import perfbench
from repro.serve import ReproServeServer, ServeClient
from repro.serve.client import STATUS_ERRORS
from repro.serve.loadgen import (
    SERVE_CRITERIA,
    _is_hit,
    run_mix,
)


@pytest.fixture
def serve_pair(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    server = ReproServeServer(
        port=0, workers=2, retries=1,
        journal=tmp_path / "serve.jsonl",
    )
    server.start()
    yield server, ServeClient(server.url)
    server.stop(drain_timeout=30.0)


# -- typed HTTP error mapping ---------------------------------------------

def test_400_bad_spec_raises_spec_error(serve_pair):
    _, client = serve_pair
    with pytest.raises(ServeSpecError):
        client.submit({"kind": "nope", "version": "A"})
    with pytest.raises(ServeSpecError):
        client.submit({"kind": "probe", "version": "ok", "nope": 1})
    with pytest.raises(ServeSpecError):
        client.submit({"kind": "probe", "version": "ok",
                       "seed": "not-an-int"})


def test_404_unknown_job_raises_not_found(serve_pair):
    _, client = serve_pair
    with pytest.raises(ServeJobNotFoundError):
        client.job("j99999-deadbeef")
    with pytest.raises(ServeJobNotFoundError):
        client.result("j99999-deadbeef")
    with pytest.raises(ServeJobNotFoundError):
        list(client.events("j99999-deadbeef"))
    # Result of a non-done job is also a 404 (nothing to fetch yet).
    doc = client.submit({"kind": "probe", "version": "slow",
                         "seed": 601})
    if doc["state"] != "done":
        with pytest.raises(ServeJobNotFoundError):
            client.result(doc["job"])
    client.wait(doc["job"], timeout=60.0)


def test_409_name_conflict_raises_duplicate(serve_pair):
    _, client = serve_pair
    doc = client.submit({"kind": "probe", "version": "ok",
                         "seed": 611, "name": "taken"})
    client.wait(doc["job"], timeout=60.0)
    with pytest.raises(ServeDuplicateJobError):
        client.submit({"kind": "probe", "version": "ok",
                       "seed": 612, "name": "taken"})


def test_503_when_saturated_or_draining(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    server = ReproServeServer(port=0, workers=1, max_queue=1,
                              journal=tmp_path / "serve.jsonl")
    server.start()
    try:
        client = ServeClient(server.url)
        first = client.submit({"kind": "probe", "version": "slow",
                               "seed": 621})
        # Backlog (pending + in-flight) is now 1 >= max_queue: a
        # second distinct fresh spec must be refused with 503.
        with pytest.raises(ServeSaturatedError):
            client.submit({"kind": "probe", "version": "slow",
                           "seed": 622})
        # Repeats of the backlogged spec still dedup (no new slot).
        dup = client.submit({"kind": "probe", "version": "slow",
                             "seed": 621})
        assert dup["job"] == first["job"]
        client.wait(first["job"], timeout=60.0)
        # Draining refuses fresh work but still answers from cache.
        server.manager.draining = True
        with pytest.raises(ServeSaturatedError):
            client.submit({"kind": "probe", "version": "slow",
                           "seed": 623})
        hit = client.submit({"kind": "probe", "version": "slow",
                             "seed": 621})
        assert hit["cache_hit"] is True
    finally:
        server.stop(drain_timeout=30.0)


def test_connection_refused_raises_connection_error():
    # Bind-then-close guarantees a dead port.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=2.0)
    with pytest.raises(ServeConnectionError):
        client.submit({"kind": "probe", "version": "ok", "seed": 1})
    with pytest.raises(ServeConnectionError):
        client.jobs()


def test_unexpected_status_maps_to_protocol_error():
    err = urllib.error.HTTPError(
        "http://x/v1/runs", 500, "boom", {},
        io.BytesIO(json.dumps({"error": "internal"}).encode()),
    )
    mapped = ServeClient._map_http_error(err)
    assert isinstance(mapped, ServeProtocolError)
    assert "internal" in str(mapped)
    # Non-JSON bodies degrade to the HTTPError's own message.
    err = urllib.error.HTTPError(
        "http://x/v1/runs", 418, "teapot", {}, io.BytesIO(b"<html>")
    )
    assert isinstance(
        ServeClient._map_http_error(err), ServeProtocolError
    )


def test_status_error_table_is_total():
    assert STATUS_ERRORS == {
        400: ServeSpecError,
        404: ServeJobNotFoundError,
        409: ServeDuplicateJobError,
        503: ServeSaturatedError,
    }


# -- load generator -------------------------------------------------------

def test_hit_schedule_is_exact_and_deterministic():
    for fraction in (0.0, 0.25, 0.5, 0.8, 1.0):
        hits = sum(_is_hit(g, fraction) for g in range(200))
        assert hits == round(200 * fraction)
    # Stable across calls (no entropy source involved).
    assert [_is_hit(g, 0.8) for g in range(40)] \
        == [_is_hit(g, 0.8) for g in range(40)]


def test_run_mix_shapes_and_counts(serve_pair):
    server, client = serve_pair
    hit_spec = {"kind": "probe", "version": "ok", "seed": 700}
    doc = client.submit(hit_spec)
    client.wait(doc["job"], timeout=60.0)
    out = run_mix(
        server.url, clients=2, requests_per_client=6,
        hit_fraction=0.5, hit_spec=hit_spec,
        fresh_seed_start=710,
    )
    assert out["requests"] == 12
    assert out["errors"] == 0
    assert out["completed"] == 12
    assert out["cache_hit"]["requests"] == 6
    assert out["fresh"]["requests"] == 6
    assert out["cache_hit"]["qps"] > 0
    assert out["fresh"]["throughput_per_s"] > 0
    assert out["cache_hit"]["p99_ms"] >= out["cache_hit"]["p50_ms"]
    # Six distinct fresh seeds -> six simulations, none deduped.
    assert server.manager.counters["executed"] == 7  # prewarm + 6


def test_serve_suite_payload_gates_through_perfbench():
    # The committed BENCH_serve.json shape, judged by the same
    # machinery as the other suites (absolute criteria only).
    payload = {
        "benchmark": "repro serve traffic",
        "quick": False,
        "cache_hit": {"qps": 80.0, "p50_ms": 5.0, "p99_ms": 20.0},
        "fresh": {"throughput_per_s": 4.0, "p50_ms": 300.0},
        "criteria": dict(SERVE_CRITERIA),
    }
    report = perfbench.check_criteria(payload)
    assert report["checked"] == 2
    assert not report["unmet"]
    red = dict(payload, cache_hit={"qps": 1.0})
    assert perfbench.check_criteria(red)["unmet"]
    # The relative gate compares nothing for this suite (absolute
    # rates track the host), so identical payloads never regress.
    rel = perfbench.check_regressions(payload, payload)
    assert rel["compared"] == 0
    assert not rel["regressed"]


def test_concurrent_clients_thread_safety(serve_pair):
    # A small burst of mixed traffic from several threads: no errors,
    # every job terminal, counters consistent.
    server, client = serve_pair
    prewarm = client.submit({"kind": "probe", "version": "ok",
                             "seed": 800})
    client.wait(prewarm["job"], timeout=60.0)
    out = run_mix(
        server.url, clients=4, requests_per_client=5,
        hit_fraction=0.8,
        hit_spec={"kind": "probe", "version": "ok", "seed": 800},
        fresh_seed_start=810,
    )
    assert out["errors"] == 0
    assert out["completed"] == 20
    counters = server.manager.counters
    assert counters["failed"] == 0
    assert counters["done"] >= 20

"""Tests for the design-principle policy layer."""

import pytest

from repro.errors import PFSError
from repro.pablo import IOOp
from repro.pfs import AccessMode
from repro.policies import (
    AccessPatternClassifier,
    AdaptivePolicy,
    DelayedWriteBuffer,
    PatternClass,
    SequentialPrefetcher,
    WriteAggregator,
)
from repro.units import KB

from tests.conftest import run_procs


# ------------------------------------------------------------- aggregator
def test_aggregator_coalesces_sequential_writes(small_world):
    eng, machine, pfs, tracer = small_world
    stats = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg")
        agg = WriteAggregator(cli, h)
        for _ in range(96):  # 96 x 2KB = 192KB = 3 stripes
            yield from agg.write(2 * KB)
        yield from agg.flush()
        stats["physical"] = agg.physical_writes
        stats["ratio"] = agg.aggregation_ratio
        yield from cli.close(h)

    run_procs(eng, proc())
    assert stats["physical"] == 3
    assert stats["ratio"] == pytest.approx(32.0)
    # The traced physical writes are stripe-sized.
    writes = tracer.finish().by_op(IOOp.WRITE)
    assert {e.nbytes for e in writes.events} == {64 * KB}


def test_aggregator_preserves_data(small_world):
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg")
        agg = WriteAggregator(cli, h)
        for _ in range(10):
            yield from agg.write(1000)
        yield from agg.flush()
        yield from cli.seek(h, 0)
        extents = yield from cli.read(h, 10 * 1000)
        got["covered"] = sum(e.end - e.start for e in extents)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert got["covered"] == 10000


def test_aggregator_flushes_on_nonsequential_write(small_world):
    eng, machine, pfs, tracer = small_world
    stats = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg")
        agg = WriteAggregator(cli, h)
        yield from agg.write(1000)
        yield from cli.seek(h, 50_000)  # break sequentiality
        yield from agg.write(1000)
        yield from agg.flush()
        stats["physical"] = agg.physical_writes
        state = h.state
        stats["covered"] = state.extents.covered_bytes(0, 1000) + \
            state.extents.covered_bytes(50_000, 51_000)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert stats["physical"] == 2
    assert stats["covered"] == 2000


def test_aggregator_invalid_threshold(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg")
        with pytest.raises(PFSError):
            WriteAggregator(cli, h, threshold=0)
        yield from cli.close(h)

    run_procs(eng, proc())


# ------------------------------------------------------------- prefetcher
def test_prefetcher_populates_server_cache(small_world):
    eng, machine, pfs, tracer = small_world

    def setup():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/pf")
        yield from cli.write(h, 256 * KB)
        yield from cli.close(h)

    run_procs(eng, setup())
    hits_before = sum(s.cache.hits for s in pfs.servers)

    def reader():
        cli = pfs.client(1)
        h = yield from cli.open("/pfs/pf", buffered=False)
        pf = SequentialPrefetcher(cli, h, depth=2)
        for _ in range(64):
            yield from pf.read(4 * KB)
        yield from cli.close(h)

    run_procs(eng, reader())
    assert sum(s.cache.hits for s in pfs.servers) > hits_before


def test_prefetcher_returns_correct_data(small_world):
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/pf")
        token = yield from cli.write(h, 64 * KB)
        yield from cli.seek(h, 0)
        pf = SequentialPrefetcher(cli, h)
        extents = yield from pf.read(1 * KB)
        got["token"] = token
        got["extents"] = extents
        yield from cli.close(h)

    run_procs(eng, proc())
    assert [e.token for e in got["extents"]] == [got["token"]]


def test_prefetcher_invalid_depth(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/pf")
        with pytest.raises(PFSError):
            SequentialPrefetcher(cli, h, depth=0)
        yield from cli.close(h)

    run_procs(eng, proc())


# ------------------------------------------------------------ write-behind
def test_delayed_writes_complete_after_drain(small_world):
    eng, machine, pfs, tracer = small_world
    got = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.gopen("/pfs/wb", group=[0], mode=AccessMode.M_ASYNC)
        buf = DelayedWriteBuffer(cli, h, max_outstanding=4)
        for _ in range(16):
            yield from buf.write(4 * KB)
        yield from buf.drain()
        got["size"] = h.state.size
        got["covered"] = h.state.extents.covered_bytes(0, 16 * 4 * KB)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert got["size"] == 16 * 4 * KB
    assert got["covered"] == 16 * 4 * KB


def test_delayed_writes_apply_backpressure(small_world):
    eng, machine, pfs, tracer = small_world
    stats = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.gopen("/pfs/wb", group=[0], mode=AccessMode.M_ASYNC)
        buf = DelayedWriteBuffer(cli, h, max_outstanding=2)
        for _ in range(20):
            yield from buf.write(4 * KB)
        yield from buf.drain()
        stats["blocked"] = buf.blocked_on_backpressure
        yield from cli.close(h)

    run_procs(eng, proc())
    assert stats["blocked"] > 0


def test_delayed_write_invalid_outstanding(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/wb")
        with pytest.raises(PFSError):
            DelayedWriteBuffer(cli, h, max_outstanding=0)
        yield from cli.close(h)

    run_procs(eng, proc())


# ------------------------------------------------------------- classifier
def test_classifier_small_sequential():
    c = AccessPatternClassifier()
    for i in range(8):
        c.observe(i * 100, 100)
    assert c.classify() == PatternClass.SMALL_SEQUENTIAL


def test_classifier_large_sequential():
    c = AccessPatternClassifier()
    for i in range(8):
        c.observe(i * 64 * KB, 64 * KB)
    assert c.classify() == PatternClass.LARGE_SEQUENTIAL


def test_classifier_strided():
    c = AccessPatternClassifier()
    for i in range(8):
        c.observe(i * 1000, 100)  # gap of 900 between requests
    assert c.classify() == PatternClass.STRIDED


def test_classifier_random():
    c = AccessPatternClassifier()
    for off in (0, 91_000, 3_000, 77_000, 15_000, 60_001, 9_000, 44_000):
        c.observe(off, 100)
    assert c.classify() == PatternClass.RANDOM


def test_classifier_unknown_until_warm():
    c = AccessPatternClassifier()
    c.observe(0, 100)
    assert c.classify() == PatternClass.UNKNOWN


def test_classifier_window_slides():
    c = AccessPatternClassifier(window=8)
    for off in (0, 50_000, 1_000, 90_000, 7_000, 30_000, 62_000, 11_000):
        c.observe(off, 100)
    assert c.classify() == PatternClass.RANDOM
    # Now feed a long sequential run: the window forgets the noise.
    pos = 0
    for _ in range(8):
        c.observe(pos, 100)
        pos += 100
    assert c.classify() == PatternClass.SMALL_SEQUENTIAL


def test_classifier_invalid_window():
    with pytest.raises(PFSError):
        AccessPatternClassifier(window=2)


# ---------------------------------------------------------------- adaptive
def test_adaptive_policy_switches_and_preserves_data(small_world):
    eng, machine, pfs, tracer = small_world
    log = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/adaptive")
        policy = AdaptivePolicy(cli, h)
        for _ in range(40):
            yield from policy.write(1 * KB)
        yield from policy.finish()
        yield from cli.seek(h, 0)
        for _ in range(40):
            yield from policy.read(1 * KB)
        log["decisions"] = [d for _, d, _ in policy.decisions]
        log["covered"] = h.state.extents.covered_bytes(0, 40 * KB)
        yield from cli.close(h)

    run_procs(eng, proc())
    assert "enable-aggregation" in log["decisions"]
    assert "enable-prefetch" in log["decisions"]
    assert log["covered"] == 40 * KB


def test_adaptive_policy_disables_prefetch_when_pattern_degrades(small_world):
    eng, machine, pfs, tracer = small_world
    log = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/adaptive-pf")
        yield from cli.write(h, 128 * KB)
        yield from cli.seek(h, 0)
        policy = AdaptivePolicy(cli, h)
        for _ in range(8):  # sequential: enables the prefetcher
            yield from policy.read(1 * KB)
        # Scatter the stream: the window re-classifies as random and
        # the policy must drop back to plain reads.
        for off in (90_000, 3_000, 61_000, 17_000, 44_000,
                    101_000, 9_000, 70_000):
            yield from cli.seek(h, off)
            yield from policy.read(1 * KB)
        log["decisions"] = [d for _, d, _ in policy.decisions]
        yield from cli.close(h)

    run_procs(eng, proc())
    assert "enable-prefetch" in log["decisions"]
    assert "disable-prefetch" in log["decisions"]
    enable = log["decisions"].index("enable-prefetch")
    assert log["decisions"].index("disable-prefetch") > enable


def test_adaptive_policy_flushes_and_disables_aggregation(small_world):
    eng, machine, pfs, tracer = small_world
    log = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/adaptive-agg")
        policy = AdaptivePolicy(cli, h)
        for _ in range(8):  # small sequential: enables aggregation
            yield from policy.write(1 * KB)
        for _ in range(4):  # large writes shift the window's mean size
            yield from policy.write(64 * KB)
        yield from policy.finish()
        log["decisions"] = [d for _, d, _ in policy.decisions]
        # Every byte of both regimes must land, including the bytes
        # buffered in the aggregator when it was switched off.
        total = 8 * KB + 4 * 64 * KB
        log["covered"] = h.state.extents.covered_bytes(0, total)
        log["total"] = total
        yield from cli.close(h)

    run_procs(eng, proc())
    assert "enable-aggregation" in log["decisions"]
    assert "disable-aggregation" in log["decisions"]
    assert log["covered"] == log["total"]


def test_adaptive_finish_without_policies_is_a_noop(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/adaptive-noop")
        policy = AdaptivePolicy(cli, h)
        yield from policy.finish()  # nothing enabled: must not fail
        assert policy.decisions == []
        yield from cli.close(h)

    run_procs(eng, proc())


def test_adaptive_policy_rejects_small_window(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/adaptive-bad")
        with pytest.raises(PFSError):
            AdaptivePolicy(cli, h, window=2)
        yield from cli.close(h)

    run_procs(eng, proc())


def test_aggregator_rejects_negative_write(small_world):
    eng, machine, pfs, tracer = small_world

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg-neg")
        agg = WriteAggregator(cli, h)
        with pytest.raises(PFSError):
            yield from agg.write(-1)
        yield from cli.close(h)

    run_procs(eng, proc())


def test_aggregator_ratio_edge_cases(small_world):
    eng, machine, pfs, tracer = small_world
    stats = {}

    def proc():
        cli = pfs.client(0)
        h = yield from cli.open("/pfs/agg-ratio")
        agg = WriteAggregator(cli, h)
        stats["fresh"] = agg.aggregation_ratio  # no writes at all
        yield from agg.write(1 * KB)  # buffered, not yet issued
        stats["buffered"] = agg.aggregation_ratio
        yield from agg.flush()
        stats["flushed"] = agg.aggregation_ratio
        # Flushing with an empty buffer issues nothing.
        physical_before = agg.physical_writes
        yield from agg.flush()
        stats["idle_flush"] = agg.physical_writes == physical_before
        yield from cli.close(h)

    run_procs(eng, proc())
    assert stats["fresh"] == 1.0
    assert stats["buffered"] == 1.0  # one logical, zero physical
    assert stats["flushed"] == 1.0  # one logical, one physical
    assert stats["idle_flush"]


def test_classifier_rejects_invalid_observation():
    c = AccessPatternClassifier()
    with pytest.raises(PFSError):
        c.observe(-1, 100)
    with pytest.raises(PFSError):
        c.observe(0, -100)
    assert c.observations == 0

"""Unit tests for the DES engine, events and processes."""

import pytest

from repro.errors import EmptySchedule, SimulationError
from repro.sim import Engine, Interrupt


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_clock_custom_start():
    eng = Engine(initial_time=100.0)
    assert eng.now == 100.0


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def proc(eng):
        yield eng.timeout(2.5)
        times.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert times == [2.5]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_timeout_value_delivered():
    eng = Engine()
    got = []

    def proc(eng):
        v = yield eng.timeout(1.0, value="payload")
        got.append(v)

    eng.process(proc(eng))
    eng.run()
    assert got == ["payload"]


def test_sequential_timeouts_accumulate():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        yield eng.timeout(2.0)
        yield eng.timeout(3.0)

    p = eng.process(proc(eng))
    eng.run()
    assert eng.now == 6.0
    assert p.processed


def test_concurrent_processes_interleave():
    eng = Engine()
    order = []

    def proc(eng, name, delay):
        yield eng.timeout(delay)
        order.append((name, eng.now))

    eng.process(proc(eng, "slow", 5.0))
    eng.process(proc(eng, "fast", 1.0))
    eng.run()
    assert order == [("fast", 1.0), ("slow", 5.0)]


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def proc(eng, name):
        yield eng.timeout(1.0)
        order.append(name)

    for name in "abc":
        eng.process(proc(eng, name))
    eng.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock():
    eng = Engine()

    def ticker(eng):
        while True:
            yield eng.timeout(1.0)

    eng.process(ticker(eng))
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_run_until_past_time_rejected():
    eng = Engine(initial_time=50.0)
    with pytest.raises(SimulationError):
        eng.run(until=10.0)


def test_run_until_event_returns_value():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(3.0)
        return "result"

    p = eng.process(proc(eng))
    assert eng.run(until=p) == "result"
    assert eng.now == 3.0


def test_run_until_already_processed_event():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        return 7

    p = eng.process(proc(eng))
    eng.run()
    assert eng.run(until=p) == 7


def test_step_on_empty_schedule_raises():
    eng = Engine()
    with pytest.raises(EmptySchedule):
        eng.step()


def test_process_waits_on_process():
    eng = Engine()
    log = []

    def child(eng):
        yield eng.timeout(2.0)
        return "child-value"

    def parent(eng):
        value = yield eng.process(child(eng))
        log.append((value, eng.now))

    eng.process(parent(eng))
    eng.run()
    assert log == [("child-value", 2.0)]


def test_event_succeed_delivers_value():
    eng = Engine()
    ev = eng.event()
    got = []

    def waiter(eng, ev):
        got.append((yield ev))

    def firer(eng, ev):
        yield eng.timeout(1.0)
        ev.succeed(123)

    eng.process(waiter(eng, ev))
    eng.process(firer(eng, ev))
    eng.run()
    assert got == [123]


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter(eng, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer(eng, ev):
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    eng.process(waiter(eng, ev))
    eng.process(firer(eng, ev))
    eng.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_crashes_run():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise ValueError("unhandled")

    eng.process(bad(eng))
    with pytest.raises(ValueError, match="unhandled"):
        eng.run()


def test_fail_with_non_exception_rejected():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yield_non_event_is_error():
    eng = Engine()

    def bad(eng):
        yield 42

    eng.process(bad(eng))
    with pytest.raises(SimulationError):
        eng.run()


def test_all_of_waits_for_all():
    eng = Engine()
    done = []

    def proc(eng):
        t1 = eng.timeout(1.0, value="a")
        t2 = eng.timeout(5.0, value="b")
        result = yield eng.all_of([t1, t2])
        done.append((eng.now, [result[t1], result[t2]]))

    eng.process(proc(eng))
    eng.run()
    assert done == [(5.0, ["a", "b"])]


def test_any_of_fires_on_first():
    eng = Engine()
    done = []

    def proc(eng):
        t1 = eng.timeout(1.0, value="fast")
        t2 = eng.timeout(5.0, value="slow")
        result = yield eng.any_of([t1, t2])
        done.append((eng.now, t1 in result, t2 in result))

    eng.process(proc(eng))
    eng.run()
    assert done == [(1.0, True, False)]


def test_and_or_operators():
    eng = Engine()
    t_all = []

    def proc(eng):
        yield eng.timeout(1.0) & eng.timeout(2.0)
        t_all.append(eng.now)
        yield eng.timeout(1.0) | eng.timeout(10.0)
        t_all.append(eng.now)

    eng.process(proc(eng))
    eng.run(until=5.0)
    assert t_all == [2.0, 3.0]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    done = []

    def proc(eng):
        yield eng.all_of([])
        done.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert done == [0.0]


def test_interrupt_wakes_waiting_process():
    eng = Engine()
    log = []

    def sleeper(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            log.append((eng.now, intr.cause))

    def interrupter(eng, victim):
        yield eng.timeout(2.0)
        victim.interrupt("wake up")

    victim = eng.process(sleeper(eng))
    eng.process(interrupter(eng, victim))
    eng.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_raises():
    eng = Engine()

    def quick(eng):
        yield eng.timeout(1.0)

    p = eng.process(quick(eng))
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_return_value():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        return {"answer": 42}

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == {"answer": 42}
    assert p.ok


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_peek_returns_next_event_time():
    eng = Engine()
    eng.timeout(7.0)
    assert eng.peek() == 7.0


def test_peek_empty_is_inf():
    eng = Engine()
    assert eng.peek() == float("inf")


def test_event_value_before_trigger_raises():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_many_processes_deterministic():
    """Two identical runs produce identical completion orders."""

    def run_once():
        eng = Engine()
        order = []

        def proc(eng, i):
            yield eng.timeout((i * 7919) % 13 + 0.1)
            order.append(i)

        for i in range(50):
            eng.process(proc(eng, i))
        eng.run()
        return order

    assert run_once() == run_once()

"""Shared fixtures: a small simulated machine + PFS for fast tests."""

import pytest

from repro.machine import DiskConfig, MachineConfig, NetworkConfig, ParagonXPS
from repro.pablo import Tracer
from repro.pfs import PFS, PFSCostModel
from repro.sim import Engine
from repro.units import KB


@pytest.fixture
def small_world():
    """An 16-node machine with 4 I/O nodes and a traced PFS.

    Returns (engine, machine, pfs, tracer).
    """
    eng = Engine()
    config = MachineConfig(
        mesh_cols=4,
        mesh_rows=4,
        n_compute_nodes=16,
        n_io_nodes=4,
        stripe_size=64 * KB,
        network=NetworkConfig(),
        disk=DiskConfig(),
    )
    machine = ParagonXPS(eng, config)
    tracer = Tracer()
    pfs = PFS(eng, machine, tracer=tracer)
    return eng, machine, pfs, tracer


def run_procs(eng, *generators):
    """Start each generator as a process and run to completion.

    Returns the processes (their ``.value`` holds return values).
    """
    procs = [eng.process(g) for g in generators]
    eng.run()
    return procs

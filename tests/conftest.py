"""Shared fixtures: a small simulated machine + PFS for fast tests."""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_run_cache(tmp_path_factory):
    """Point the on-disk run cache at a per-session temp directory.

    Tests still exercise the cache layer (store + load round-trips),
    but never read stale entries from — or write into — the user's
    real ``~/.cache/repro``.
    """
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("run-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old

from repro.machine import DiskConfig, MachineConfig, NetworkConfig, ParagonXPS
from repro.pablo import Tracer
from repro.pfs import PFS
from repro.sim import Engine
from repro.units import KB


@pytest.fixture
def small_world():
    """An 16-node machine with 4 I/O nodes and a traced PFS.

    Returns (engine, machine, pfs, tracer).
    """
    eng = Engine()
    config = MachineConfig(
        mesh_cols=4,
        mesh_rows=4,
        n_compute_nodes=16,
        n_io_nodes=4,
        stripe_size=64 * KB,
        network=NetworkConfig(),
        disk=DiskConfig(),
    )
    machine = ParagonXPS(eng, config)
    tracer = Tracer()
    pfs = PFS(eng, machine, tracer=tracer)
    return eng, machine, pfs, tracer


def run_procs(eng, *generators):
    """Start each generator as a process and run to completion.

    Returns the processes (their ``.value`` holds return values).
    """
    procs = [eng.process(g) for g in generators]
    eng.run()
    return procs

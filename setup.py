"""Setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP-517 editable installs (which require ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work offline.  Metadata lives in
``pyproject.toml``; keep the two in sync.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'I/O Requirements of Scientific Applications: "
        "An Evolutionary View' (Smirni et al., HPDC 1996)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
